// Incremental-update tests: GraphDelta application, copy-on-write epochs,
// value-only vs pattern-changing delta handling (pattern_id stamp reuse,
// per-shard selective rebuild), warm-started eigensolves (strictly fewer
// Lanczos iterations, same eigenpairs within tolerance, at SGLA_THREADS=1,4
// x shards=1,4), the zero-allocation hot path of a value-only update +
// warm re-solve, and UpdateGraph racing evict/re-register (TSAN-clean).
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregator.h"
#include "core/integration.h"
#include "core/objective.h"
#include "core/view_laplacian.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "la/lanczos.h"
#include "serve/engine.h"
#include "serve/graph_delta.h"
#include "serve/graph_registry.h"
#include "serve/shard_plan.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// ---------------------------------------------------------------------------
// Allocation-counting hook (same scheme as engine_test.cc): operator new
// bumps a counter so tests can assert the value-only update + warm re-solve
// hot path allocates nothing.
// ---------------------------------------------------------------------------
namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

// GCC can't see that these replacements pair new<->malloc and delete<->free
// consistently once library code is inlined against them; the runtime
// pairing is correct by definition of global replacement.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace sgla {
namespace {

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() {
    util::ThreadPool::SetGlobalThreads(util::ThreadPool::DefaultThreads());
  }
};

/// Two-SBM-view fixture sized so MakeShardPlan(n, 4) really yields 4 shards
/// (4 fixed 512-row chunks, ragged tail) without dragging test time up.
struct UpdateFixture {
  core::MultiViewGraph mvag;

  static UpdateFixture Make(int64_t n, int k, uint64_t seed) {
    UpdateFixture f;
    Rng rng(seed);
    std::vector<int32_t> labels = data::BalancedLabels(n, k, &rng);
    f.mvag = core::MultiViewGraph(n, k);
    f.mvag.AddGraphView(data::SbmGraph(labels, k, 0.04, 0.004, &rng));
    f.mvag.AddGraphView(data::SbmGraph(labels, k, 0.02, 0.008, &rng));
    f.mvag.set_labels(std::move(labels));
    return f;
  }
};

/// A value-only delta: re-weights `count` existing edges of graph view 0.
/// No insertion, no removal, all weights positive — every view keeps its
/// sparsity pattern.
serve::GraphDelta WeightDelta(const core::MultiViewGraph& mvag, size_t count,
                              double weight) {
  serve::GraphDelta delta;
  serve::GraphViewDelta view_delta;
  view_delta.view = 0;
  const std::vector<graph::Edge>& edges = mvag.graph_views()[0].edges();
  const size_t stride = std::max<size_t>(1, edges.size() / count);
  for (size_t i = 0; i < edges.size() && view_delta.upserts.size() < count;
       i += stride) {
    view_delta.upserts.push_back({edges[i].u, edges[i].v, weight});
  }
  delta.graph_views.push_back(std::move(view_delta));
  return delta;
}

/// A pattern-changing delta: removes `count` existing edges of view 0.
serve::GraphDelta RemovalDelta(const core::MultiViewGraph& mvag,
                               size_t count) {
  serve::GraphDelta delta;
  serve::GraphViewDelta view_delta;
  view_delta.view = 0;
  const std::vector<graph::Edge>& edges = mvag.graph_views()[0].edges();
  for (size_t i = 0; i < edges.size() && i < count; ++i) {
    view_delta.removals.push_back({edges[i].u, edges[i].v});
  }
  delta.graph_views.push_back(std::move(view_delta));
  return delta;
}

core::SglaPlusOptions FastOptions() {
  core::SglaPlusOptions options;
  options.base.max_evaluations = 16;  // keep full-solve tests quick
  return options;
}

void ExpectSameIntegration(const core::IntegrationResult& a,
                           const core::IntegrationResult& b) {
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.laplacian.row_ptr, b.laplacian.row_ptr);
  EXPECT_EQ(a.laplacian.col_idx, b.laplacian.col_idx);
  EXPECT_EQ(a.laplacian.values, b.laplacian.values);
  EXPECT_EQ(a.objective_history, b.objective_history);
}

/// Cold-solves `id` on `engine` and returns the response.
serve::SolveResponse Solve(serve::Engine* engine, const std::string& id,
                           bool warm = false) {
  serve::SolveRequest request;
  request.graph_id = id;
  request.warm_start = warm;
  request.options = FastOptions();
  auto response = engine->Solve(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return std::move(*response);
}

// ---------------------------------------------------------------------------
// Delta semantics + copy-on-write epochs
// ---------------------------------------------------------------------------

TEST(GraphDeltaTest, ValidateThenApplyLeavesGraphUntouchedOnError) {
  UpdateFixture f = UpdateFixture::Make(240, 2, 7);
  const int64_t edges_before = f.mvag.graph_views()[0].num_edges();

  serve::GraphDelta bad;
  serve::GraphViewDelta view_delta;
  view_delta.view = 0;
  view_delta.upserts.push_back({0, 5, 2.0});
  view_delta.upserts.push_back({0, 99999, 1.0});  // out of range
  bad.graph_views.push_back(std::move(view_delta));

  std::vector<bool> affected;
  EXPECT_FALSE(serve::ApplyDelta(&f.mvag, bad, &affected).ok());
  EXPECT_EQ(f.mvag.graph_views()[0].num_edges(), edges_before);
}

TEST(GraphDeltaTest, UpsertReplacesInPlaceAndRemovalDropsBothOrientations) {
  core::MultiViewGraph mvag(6, 2);
  graph::Graph g(6);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 0, 2.0);  // parallel duplicate, reversed orientation
  g.AddEdge(2, 3, 1.0);
  mvag.AddGraphView(std::move(g));

  serve::GraphDelta delta;
  serve::GraphViewDelta view_delta;
  view_delta.view = 0;
  view_delta.upserts.push_back({1, 0, 5.0});  // replaces + coalesces (0,1)
  view_delta.upserts.push_back({4, 5, 3.0});  // inserts
  view_delta.removals.push_back({3, 2});      // removes (2,3)
  delta.graph_views.push_back(std::move(view_delta));

  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&mvag, delta, &affected).ok());
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_TRUE(affected[0]);
  const std::vector<graph::Edge>& edges = mvag.graph_views()[0].edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].u, 0);
  EXPECT_EQ(edges[0].v, 1);
  EXPECT_EQ(edges[0].weight, 5.0);
  EXPECT_EQ(edges[1].u, 4);
  EXPECT_EQ(edges[1].v, 5);
  EXPECT_EQ(edges[1].weight, 3.0);
}

TEST(UpdateGraphTest, EmptyDeltaIsANoOp) {
  UpdateFixture f = UpdateFixture::Make(240, 2, 11);
  serve::GraphRegistry registry;
  auto registered = registry.Register("g", f.mvag);
  ASSERT_TRUE(registered.ok());

  auto updated = registry.UpdateGraph("g", serve::GraphDelta());
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->get(), registered->get());  // same snapshot, same epoch
  EXPECT_EQ((*updated)->epoch, 0);
}

TEST(UpdateGraphTest, UnknownIdAndViewOnlyEntriesFail) {
  UpdateFixture f = UpdateFixture::Make(240, 2, 13);
  serve::GraphRegistry registry;
  auto views = core::ComputeViewLaplacians(f.mvag);
  ASSERT_TRUE(views.ok());
  ASSERT_TRUE(registry.RegisterViews("views-only", *views, 2).ok());

  auto missing = registry.UpdateGraph("nope", WeightDelta(f.mvag, 4, 2.0));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto sourceless =
      registry.UpdateGraph("views-only", WeightDelta(f.mvag, 4, 2.0));
  EXPECT_EQ(sourceless.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Value-only vs pattern-changing deltas, at SGLA_THREADS=1,4 x shards=1,4.
// The updated entry's cold solve must be bit-identical to registering the
// post-delta graph from scratch — the copy-on-write epoch is just a faster
// way to the same state.
// ---------------------------------------------------------------------------

class UpdateSolveTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UpdateSolveTest, ValueOnlyDeltaReusesPatternAndMatchesScratch) {
  const int threads = std::get<0>(GetParam());
  const int shards = std::get<1>(GetParam());
  ThreadCountGuard guard;
  util::ThreadPool::SetGlobalThreads(threads);

  UpdateFixture f = UpdateFixture::Make(1800, 3, 17);
  serve::RegisterOptions options;
  options.shards = shards;

  serve::GraphRegistry registry;
  auto before = registry.Register("g", f.mvag, options);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const uint64_t pattern_before = (*before)->aggregator->pattern_id();

  const serve::GraphDelta delta = WeightDelta(f.mvag, 12, 1.75);
  auto after = registry.UpdateGraph("g", delta);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)->epoch, 1);
  EXPECT_NE(after->get(), before->get());

  // The pattern_id stamp is the value-only contract: bound workspaces must
  // not rebind, so the donor aggregators keep the previous epoch's id.
  EXPECT_EQ((*after)->aggregator->pattern_id(), pattern_before);
  if (shards > 1) {
    ASSERT_NE((*before)->sharded, nullptr);
    ASSERT_NE((*after)->sharded, nullptr);
    EXPECT_EQ((*after)->sharded->aggregator.pattern_id(),
              (*before)->sharded->aggregator.pattern_id());
  }
  // Views: affected view re-valued on the same pattern, the other carried.
  EXPECT_EQ((*after)->views[0].col_idx, (*before)->views[0].col_idx);
  EXPECT_NE((*after)->views[0].values, (*before)->views[0].values);
  EXPECT_EQ((*after)->views[1].values, (*before)->views[1].values);

  // Bit-identity with a from-scratch registration of the mutated graph.
  core::MultiViewGraph scratch_mvag = f.mvag;
  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&scratch_mvag, delta, &affected).ok());
  serve::GraphRegistry scratch_registry;
  ASSERT_TRUE(scratch_registry.Register("g", scratch_mvag, options).ok());

  serve::Engine updated_engine(&registry);
  serve::Engine scratch_engine(&scratch_registry);
  const serve::SolveResponse updated = Solve(&updated_engine, "g");
  const serve::SolveResponse scratch = Solve(&scratch_engine, "g");
  ExpectSameIntegration(updated.integration, scratch.integration);
  EXPECT_EQ(updated.labels, scratch.labels);
  EXPECT_EQ(updated.stats.graph_epoch, 1);
}

TEST_P(UpdateSolveTest, PatternChangingDeltaRebuildsAndMatchesScratch) {
  const int threads = std::get<0>(GetParam());
  const int shards = std::get<1>(GetParam());
  ThreadCountGuard guard;
  util::ThreadPool::SetGlobalThreads(threads);

  UpdateFixture f = UpdateFixture::Make(1800, 3, 19);
  serve::RegisterOptions options;
  options.shards = shards;

  serve::GraphRegistry registry;
  auto before = registry.Register("g", f.mvag, options);
  ASSERT_TRUE(before.ok());
  const uint64_t pattern_before = (*before)->aggregator->pattern_id();

  const serve::GraphDelta delta = RemovalDelta(f.mvag, 10);
  auto after = registry.UpdateGraph("g", delta);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)->epoch, 1);
  // Removals change view 0's sparsity: the union pattern is rebuilt under a
  // fresh id so every bound workspace rebinds.
  EXPECT_NE((*after)->aggregator->pattern_id(), pattern_before);

  core::MultiViewGraph scratch_mvag = f.mvag;
  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&scratch_mvag, delta, &affected).ok());
  serve::GraphRegistry scratch_registry;
  ASSERT_TRUE(scratch_registry.Register("g", scratch_mvag, options).ok());

  serve::Engine updated_engine(&registry);
  serve::Engine scratch_engine(&scratch_registry);
  const serve::SolveResponse updated = Solve(&updated_engine, "g");
  const serve::SolveResponse scratch = Solve(&scratch_engine, "g");
  ExpectSameIntegration(updated.integration, scratch.integration);
  EXPECT_EQ(updated.labels, scratch.labels);
}

INSTANTIATE_TEST_SUITE_P(ThreadsByShards, UpdateSolveTest,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(1, 4)));

TEST(UpdateGraphTest, DeletingAViewsLastEdgeInAShardRebuildsOnlyThatShard) {
  // A third view whose few edges all live in shard 0 of a 4-shard plan
  // (rows < 512): deleting them empties that view's slice in shard 0 while
  // shards 1..3 (already empty for this view) keep their patterns.
  UpdateFixture f = UpdateFixture::Make(1800, 3, 23);
  graph::Graph sparse_view(1800);
  for (int64_t i = 0; i < 6; ++i) sparse_view.AddEdge(i, i + 1, 1.0);
  f.mvag.AddGraphView(std::move(sparse_view));

  serve::RegisterOptions options;
  options.shards = 4;
  serve::GraphRegistry registry;
  auto before = registry.Register("g", f.mvag, options);
  ASSERT_TRUE(before.ok());
  ASSERT_NE((*before)->sharded, nullptr);

  serve::GraphDelta delta;
  serve::GraphViewDelta view_delta;
  view_delta.view = 2;  // the sparse extra view
  for (int64_t i = 0; i < 6; ++i) view_delta.removals.push_back({i, i + 1});
  delta.graph_views.push_back(std::move(view_delta));

  auto after = registry.UpdateGraph("g", delta);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)->views[2].nnz(), 0);  // the view is now empty
  // Shard 0's pattern changed, so the sharded aggregator takes a fresh id…
  EXPECT_NE((*after)->sharded->aggregator.pattern_id(),
            (*before)->sharded->aggregator.pattern_id());
  // …but shards 1..3 donor-copied: their slice patterns are unchanged.
  for (int s = 1; s < 4; ++s) {
    EXPECT_EQ(
        (*after)->sharded->aggregator.shard_aggregator(s).pattern().col_idx,
        (*before)->sharded->aggregator.shard_aggregator(s).pattern().col_idx);
  }

  core::MultiViewGraph scratch_mvag = f.mvag;
  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&scratch_mvag, delta, &affected).ok());
  serve::GraphRegistry scratch_registry;
  ASSERT_TRUE(scratch_registry.Register("g", scratch_mvag, options).ok());
  serve::Engine updated_engine(&registry);
  serve::Engine scratch_engine(&scratch_registry);
  const serve::SolveResponse updated = Solve(&updated_engine, "g");
  const serve::SolveResponse scratch = Solve(&scratch_engine, "g");
  ExpectSameIntegration(updated.integration, scratch.integration);
  EXPECT_EQ(updated.labels, scratch.labels);
}

TEST(UpdateGraphTest, AttributeRowUpdateRecomputesOnlyThatView) {
  UpdateFixture f = UpdateFixture::Make(300, 2, 29);
  Rng rng(31);
  f.mvag.AddAttributeView(data::GaussianAttributes(
      data::BalancedLabels(300, 2, &rng), 2, 6, 3.0, 0.9, &rng));

  serve::GraphRegistry registry;
  auto before = registry.Register("g", f.mvag);
  ASSERT_TRUE(before.ok());

  serve::GraphDelta delta;
  serve::AttributeRowUpdate row_update;
  row_update.view = 0;
  row_update.row = 5;
  row_update.values.assign(6, 0.25);
  delta.attribute_rows.push_back(std::move(row_update));

  auto after = registry.UpdateGraph("g", delta);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  // Graph views carried over bitwise; the attribute view (global index 2)
  // re-ran its KNN.
  EXPECT_EQ((*after)->views[0].values, (*before)->views[0].values);
  EXPECT_EQ((*after)->views[1].values, (*before)->views[1].values);

  core::MultiViewGraph scratch_mvag = f.mvag;
  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&scratch_mvag, delta, &affected).ok());
  ASSERT_TRUE(affected[2]);
  auto scratch_views = core::ComputeViewLaplacians(scratch_mvag);
  ASSERT_TRUE(scratch_views.ok());
  EXPECT_EQ((*after)->views[2].row_ptr, (*scratch_views)[2].row_ptr);
  EXPECT_EQ((*after)->views[2].col_idx, (*scratch_views)[2].col_idx);
  EXPECT_EQ((*after)->views[2].values, (*scratch_views)[2].values);
}

// ---------------------------------------------------------------------------
// Warm-started eigensolves: after a <=1% edge delta a warm solve must build
// strictly fewer Lanczos basis vectors than a cold solve on the same updated
// graph and land on the same eigenpairs within tolerance — at every
// (threads, shards) combination, with the warm result itself bit-identical
// across the combinations.
// ---------------------------------------------------------------------------

TEST(WarmStartTest, FewerIterationsSameEigenpairsAcrossThreadsAndShards) {
  const int64_t n = 1800;
  const int k = 3;
  UpdateFixture f = UpdateFixture::Make(n, k, 37);
  auto views_before = core::ComputeViewLaplacians(f.mvag);
  ASSERT_TRUE(views_before.ok());

  // <=1% of view 0's edges get a small weight nudge (value-only).
  const size_t count =
      static_cast<size_t>(f.mvag.graph_views()[0].num_edges() / 100);
  const serve::GraphDelta delta = WeightDelta(f.mvag, count, 1.1);
  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&f.mvag, delta, &affected).ok());
  auto views_after = core::ComputeViewLaplacians(f.mvag);
  ASSERT_TRUE(views_after.ok());

  const std::vector<double> weights = {0.6, 0.4};
  la::Vector warm_values_reference;
  bool have_reference = false;

  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    util::ThreadPool::SetGlobalThreads(threads);
    for (int shards : {1, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      serve::ShardPlan plan = serve::MakeShardPlan(n, shards);
      const bool sharded = plan.num_shards() > 1;

      // Pre-update solve supplies the warm seed.
      core::EvalWorkspace seed_ws;
      core::LaplacianAggregator seed_aggregator(&*views_before);
      core::SpectralObjective seed_objective(&seed_aggregator, k,
                                             core::ObjectiveOptions(),
                                             &seed_ws);
      ASSERT_TRUE(seed_objective.Evaluate(weights).ok());
      const la::DenseMatrix seed_vectors = seed_ws.eigen.vectors;

      // Post-update cold evaluation (the baseline the warm one must beat).
      core::LaplacianAggregator aggregator(&*views_after);
      core::ShardedAggregator sharded_aggregator(
          &*views_after,
          sharded ? plan.boundaries : std::vector<int64_t>{0, n}, nullptr);
      core::EvalWorkspace cold_ws;
      core::ShardedEvalWorkspace cold_shard_ws;
      core::ObjectiveOptions cold_options;
      core::SpectralObjective cold_objective =
          sharded ? core::SpectralObjective(&sharded_aggregator, k,
                                            cold_options, &cold_shard_ws)
                  : core::SpectralObjective(&aggregator, k, cold_options,
                                            &cold_ws);
      auto cold = cold_objective.Evaluate(weights);
      ASSERT_TRUE(cold.ok());
      ASSERT_GT(cold->lanczos_iterations, 0);
      const la::Eigenpairs cold_eigen =
          sharded ? cold_shard_ws.base.eigen : cold_ws.eigen;

      // Post-update warm evaluation.
      core::EvalWorkspace warm_ws;
      core::ShardedEvalWorkspace warm_shard_ws;
      core::ObjectiveOptions warm_options;
      warm_options.warm_start = &seed_vectors;
      core::SpectralObjective warm_objective =
          sharded ? core::SpectralObjective(&sharded_aggregator, k,
                                            warm_options, &warm_shard_ws)
                  : core::SpectralObjective(&aggregator, k, warm_options,
                                            &warm_ws);
      auto warm = warm_objective.Evaluate(weights);
      ASSERT_TRUE(warm.ok());
      const la::Eigenpairs& warm_eigen =
          sharded ? warm_shard_ws.base.eigen : warm_ws.eigen;

      // Strictly fewer basis vectors, same spectrum within tolerance. The
      // first k pairs (what the pipeline consumes as vectors) must agree
      // tightly in value and direction. The k+1-th pair sits at the edge of
      // the spectral bulk, where the solver by design serves a subspace-
      // size-accurate approximation instead of iterating to convergence
      // (see DESIGN.md "Eigensolver early exit"): its value only feeds the
      // eigengap denominator, so it is compared at the optimizer's epsilon
      // scale and its direction not at all.
      EXPECT_LT(warm->lanczos_iterations, cold->lanczos_iterations);
      ASSERT_EQ(warm_eigen.values.size(), cold_eigen.values.size());
      for (size_t j = 0; j < cold_eigen.values.size(); ++j) {
        const bool tail = j + 1 == cold_eigen.values.size();
        EXPECT_NEAR(warm_eigen.values[j], cold_eigen.values[j],
                    tail ? 1e-3 : 1e-6);
        if (tail) continue;
        double dot = 0.0;
        for (int64_t i = 0; i < n; ++i) {
          dot += warm_eigen.vectors(i, static_cast<int64_t>(j)) *
                 cold_eigen.vectors(i, static_cast<int64_t>(j));
        }
        EXPECT_GT(std::fabs(dot), 1.0 - 1e-4)
            << "eigenvector " << j << " diverged";
      }

      // The warm result is itself deterministic: identical bits at every
      // (threads, shards) combination.
      if (!have_reference) {
        warm_values_reference = warm_eigen.values;
        have_reference = true;
      } else {
        EXPECT_EQ(warm_eigen.values, warm_values_reference);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation hot path: steady-state value-only update + warm re-solve.
// The epoch swap itself builds a new entry (control path, allocates); the
// HOT path — re-scattering values through the donor pattern and the
// warm-seeded eigensolve in a bound workspace — must not touch the heap.
// ---------------------------------------------------------------------------

TEST(UpdateAllocationTest, ValueOnlyUpdateWarmResolveHotPathAllocatesNothing) {
  UpdateFixture f = UpdateFixture::Make(1200, 3, 41);
  auto views_before = core::ComputeViewLaplacians(f.mvag);
  ASSERT_TRUE(views_before.ok());
  const serve::GraphDelta delta = WeightDelta(f.mvag, 10, 1.3);
  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&f.mvag, delta, &affected).ok());
  auto views_after = core::ComputeViewLaplacians(f.mvag);
  ASSERT_TRUE(views_after.ok());

  core::LaplacianAggregator before_aggregator(&*views_before);
  // The value-only donor copy: same pattern, same pattern_id.
  core::LaplacianAggregator after_aggregator(&*views_after,
                                             before_aggregator);
  ASSERT_EQ(after_aggregator.pattern_id(), before_aggregator.pattern_id());

  const std::vector<double> w1 = {0.55, 0.45};
  const std::vector<double> w2 = {0.30, 0.70};
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    util::ThreadPool::SetGlobalThreads(threads);
    core::EvalWorkspace ws;
    core::SpectralObjective seed_objective(&before_aggregator, 3,
                                           core::ObjectiveOptions(), &ws);
    ASSERT_TRUE(seed_objective.Evaluate(w1).ok());
    ASSERT_TRUE(seed_objective.Evaluate(w2).ok());
    const la::DenseMatrix seed_vectors = ws.eigen.vectors;  // pre-update

    core::ObjectiveOptions warm_options;
    warm_options.warm_start = &seed_vectors;
    core::SpectralObjective warm_objective(&after_aggregator, 3, warm_options,
                                           &ws);
    // Warm-up: sizes the warm-seed buffer and the early-exit scratch.
    ASSERT_TRUE(warm_objective.Evaluate(w1).ok());
    ASSERT_TRUE(warm_objective.Evaluate(w2).ok());

    const int64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 10; ++i) {
      auto value = warm_objective.Evaluate(i % 2 == 0 ? w1 : w2);
      ASSERT_TRUE(value.ok());
      ASSERT_TRUE(value->lanczos_iterations > 0);
    }
    const int64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0)
        << "warm re-solve hot path allocated at threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Engine-level warm solves
// ---------------------------------------------------------------------------

TEST(EngineUpdateTest, WarmSolveAfterSmallDeltaBeatsColdAndAgrees) {
  UpdateFixture f = UpdateFixture::Make(1800, 3, 43);
  const size_t count =
      static_cast<size_t>(f.mvag.graph_views()[0].num_edges() / 100);
  const serve::GraphDelta delta = WeightDelta(f.mvag, count, 1.1);

  // Engine A: solve cold (banks the seed), apply the delta, solve warm.
  serve::GraphRegistry registry;
  serve::Engine engine(&registry);
  ASSERT_TRUE(engine.RegisterGraph("g", f.mvag).ok());
  const serve::SolveResponse cold_before = Solve(&engine, "g");
  EXPECT_FALSE(cold_before.stats.warm_started);
  EXPECT_EQ(cold_before.stats.graph_epoch, 0);

  auto updated = engine.UpdateGraph("g", delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ((*updated)->epoch, 1);

  // Independent cold baseline on the post-delta graph (a separate engine so
  // its solve cannot touch A's warm bank).
  core::MultiViewGraph scratch_mvag = f.mvag;
  std::vector<bool> affected;
  ASSERT_TRUE(serve::ApplyDelta(&scratch_mvag, delta, &affected).ok());
  serve::GraphRegistry scratch_registry;
  serve::Engine scratch_engine(&scratch_registry);
  ASSERT_TRUE(scratch_engine.RegisterGraph("g", scratch_mvag).ok());
  const serve::SolveResponse cold_after = Solve(&scratch_engine, "g");

  const serve::SolveResponse warm = Solve(&engine, "g", /*warm=*/true);
  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_EQ(warm.stats.graph_epoch, 1);
  EXPECT_GT(warm.stats.lanczos_iterations, 0);
  EXPECT_LT(warm.stats.lanczos_iterations, cold_after.stats.lanczos_iterations)
      << "warm solve should build fewer Lanczos vectors than a cold one";

  // Warm solves trade bit-identity for speed but must land on an equivalent
  // clustering of the updated graph.
  const eval::ClusteringQuality quality =
      eval::EvaluateClustering(warm.labels, cold_after.labels);
  EXPECT_GE(quality.nmi, 0.9);
}

TEST(EngineUpdateTest, WarmRequestWithoutBankRunsCold) {
  UpdateFixture f = UpdateFixture::Make(600, 2, 47);
  serve::GraphRegistry registry;
  serve::Engine engine(&registry);
  ASSERT_TRUE(engine.RegisterGraph("g", f.mvag).ok());

  // First-ever solve with warm_start requested: nothing banked yet, so it
  // runs cold — and must therefore be bit-identical to an explicit cold one.
  const serve::SolveResponse warm_requested = Solve(&engine, "g", true);
  EXPECT_FALSE(warm_requested.stats.warm_started);

  serve::GraphRegistry cold_registry;
  serve::Engine cold_engine(&cold_registry);
  ASSERT_TRUE(cold_engine.RegisterGraph("g", f.mvag).ok());
  const serve::SolveResponse cold = Solve(&cold_engine, "g");
  ExpectSameIntegration(warm_requested.integration, cold.integration);
  EXPECT_EQ(warm_requested.labels, cold.labels);
}

TEST(EngineUpdateTest, EvictDropsTheWarmBank) {
  UpdateFixture f = UpdateFixture::Make(600, 2, 53);
  serve::GraphRegistry registry;
  serve::Engine engine(&registry);
  ASSERT_TRUE(engine.RegisterGraph("g", f.mvag).ok());
  (void)Solve(&engine, "g");  // banks a seed

  ASSERT_TRUE(engine.EvictGraph("g"));
  ASSERT_TRUE(engine.RegisterGraph("g", f.mvag).ok());
  const serve::SolveResponse warm_requested = Solve(&engine, "g", true);
  EXPECT_FALSE(warm_requested.stats.warm_started)
      << "eviction must invalidate the warm bank";
}

// ---------------------------------------------------------------------------
// UpdateGraph racing evict / re-register (extends the PR-4 snapshot-lookup
// hammer): one updater stream, one evict+re-register stream, two snapshot
// readers. TSAN (scripts/check.sh --tsan) verifies the locking; the
// assertions verify updates never resurrect an evicted id, every outcome is
// one of {applied, NotFound}, and readers never observe torn entries.
// ---------------------------------------------------------------------------

TEST(UpdateHammerTest, UpdateRacingEvictReregisterIsClean) {
  UpdateFixture f = UpdateFixture::Make(260, 2, 59);
  serve::GraphRegistry registry;
  ASSERT_TRUE(registry.Register("g", f.mvag).ok());
  const serve::GraphDelta delta = WeightDelta(f.mvag, 6, 1.5);

  constexpr int kIterations = 120;
  std::atomic<bool> stop{false};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;

  threads.emplace_back([&] {  // updater
    for (int i = 0; i < kIterations; ++i) {
      auto updated = registry.UpdateGraph("g", delta);
      if (!updated.ok() &&
          updated.status().code() != StatusCode::kNotFound) {
        ++unexpected;  // FailedPrecondition would mean a sourceless entry
      }
      if (updated.ok() && (*updated)->aggregator->pattern_id() == 0) {
        ++unexpected;
      }
    }
  });
  threads.emplace_back([&] {  // evict + re-register under the same id
    for (int i = 0; i < kIterations; ++i) {
      registry.Evict("g");
      (void)registry.Register("g", f.mvag);
    }
  });
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {  // snapshot readers
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = registry.Find("g");
        if (snapshot == nullptr) continue;
        if (snapshot->num_nodes != 260 || snapshot->views.size() != 2u ||
            snapshot->epoch < 0 ||
            snapshot->aggregator->pattern_id() == 0) {
          ++unexpected;
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();
  EXPECT_EQ(unexpected.load(), 0);

  // The registry still works after the storm.
  ASSERT_NE(registry.Find("g"), nullptr);
  auto updated = registry.UpdateGraph("g", delta);
  EXPECT_TRUE(updated.ok()) << updated.status().ToString();
}

}  // namespace
}  // namespace sgla
