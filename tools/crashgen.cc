// Crash-recovery harness behind the CI crash-recovery-gate (see
// .github/workflows/ci.yml and DESIGN.md "Durability & recovery").
//
// The parent first runs one UNINTERRUPTED pipeline — register a fixed SBM
// fixture, stream a deterministic delta sequence, solve — in a purely
// in-memory child (no --data-dir) and keeps its solve fingerprint as the
// reference. Each trial then runs the same pipeline in a persistent child
// (fresh data dir) and SIGKILLs it at a seeded-random instant — anywhere
// from mid-registration through mid-WAL-append to mid-solve — one or more
// times, restarting after every kill. The final restart recovers from the
// checkpoints + WAL, finishes the remaining deltas, solves, and writes its
// fingerprint; the gate fails unless it is byte-identical to the reference.
// That is the durability contract end to end: a kill -9 at ANY point loses
// nothing acknowledged and recovers to bit-identical solves.
//
// The kill schedule derives from one logged seed (SGLA_CRASH_SEED or --seed
// overrides), so a red run reproduces exactly. Children are separate
// processes via fork+execv of /proc/self/exe: a plain fork would duplicate
// the global kernel ThreadPool mid-flight, exec starts each child clean.
//
// Usage: sgla_crashgen --dir <workdir> [--trials T] [--deltas N]
//                      [--shards S] [--seed X]
//        (thread count comes from SGLA_THREADS, like sgla_bitdump)
#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/mvag.h"
#include "data/generator.h"
#include "graph/graph.h"
#include "la/sparse.h"
#include "serve/engine.h"
#include "serve/graph_delta.h"
#include "serve/graph_registry.h"
#include "util/rng.h"

namespace sgla {
namespace {

constexpr const char* kGraphId = "crash";
constexpr int64_t kNodes = 900;
constexpr int kClusters = 3;
constexpr uint64_t kFixtureSeed = 20250807;
// Per-epoch delta seeds: delta e is a pure function of (kDeltaSeed, e), so a
// recovered child regenerates epochs checkpoint+1 .. N exactly as the killed
// one produced them.
constexpr uint64_t kDeltaSeed = 715;
constexpr int64_t kAddViewEpoch = 6;

uint64_t Fnv1a(const void* data, size_t bytes,
               uint64_t hash = 1469598103934665603ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
uint64_t HashVector(const std::vector<T>& v) {
  return Fnv1a(v.data(), v.size() * sizeof(T));
}

uint64_t HashCsr(const la::CsrMatrix& m) {
  uint64_t hash = Fnv1a(m.row_ptr.data(), m.row_ptr.size() * sizeof(int64_t));
  hash = Fnv1a(m.col_idx.data(), m.col_idx.size() * sizeof(int64_t), hash);
  return Fnv1a(m.values.data(), m.values.size() * sizeof(double), hash);
}

/// The fixture both runs build identically: two SBM graph views plus one
/// label-shifted Gaussian attribute view, so recovery also covers the
/// deterministic KNN rebuild of attribute-view Laplacians.
core::MultiViewGraph BuildFixture() {
  Rng rng(kFixtureSeed);
  std::vector<int32_t> labels = data::BalancedLabels(kNodes, kClusters, &rng);
  core::MultiViewGraph mvag(kNodes, kClusters);
  mvag.AddGraphView(data::SbmGraph(labels, kClusters, 0.05, 0.005, &rng));
  mvag.AddGraphView(data::SbmGraph(labels, kClusters, 0.02, 0.008, &rng));
  la::DenseMatrix attributes(kNodes, 4);
  for (int64_t i = 0; i < kNodes; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      attributes(i, j) = rng.Gaussian() + 2.0 * labels[i];
    }
  }
  mvag.AddAttributeView(std::move(attributes));
  mvag.set_labels(std::move(labels));
  return mvag;
}

/// Delta that produces epoch `e` — a pure function of e, covering edge
/// upserts (value and pattern changes), an attribute row rewrite (KNN
/// recompute), a mask/unmask pair, and one AddView, so the WAL the gate
/// replays exercises every record shape including the PR 9 lifecycle ops.
serve::GraphDelta DeltaForEpoch(int64_t e) {
  Rng rng(kDeltaSeed + static_cast<uint64_t>(e));
  serve::GraphDelta delta;
  if (e % 7 == 3) {
    delta.mask_views = {1};
    return delta;
  }
  if (e % 7 == 4) {
    delta.unmask_views = {1};
    return delta;
  }
  if (e == kAddViewEpoch) {
    graph::Graph extra(kNodes);
    for (int64_t m = 0; m < 3 * kNodes; ++m) {
      const int64_t u = rng.UniformInt(0, kNodes - 1);
      const int64_t v = rng.UniformInt(0, kNodes - 1);
      if (u != v) extra.AddEdge(u, v, 1.0);
    }
    serve::ViewAddition addition;
    addition.attribute = false;
    addition.graph = std::move(extra);
    delta.add_views.push_back(std::move(addition));
    return delta;
  }
  if (e % 7 == 5) {
    serve::AttributeRowUpdate row;
    row.view = 0;
    row.row = (e * 131) % kNodes;
    row.values.resize(4);
    for (double& value : row.values) value = rng.Gaussian();
    delta.attribute_rows.push_back(std::move(row));
    return delta;
  }
  serve::GraphViewDelta edits;
  edits.view = static_cast<int>(e % 2);
  for (int i = 0; i < 3; ++i) {
    serve::EdgeUpsert upsert;
    upsert.u = rng.UniformInt(0, kNodes - 1);
    upsert.v = rng.UniformInt(0, kNodes - 1);
    if (upsert.u == upsert.v) upsert.v = (upsert.v + 1) % kNodes;
    upsert.weight = 0.5 + rng.Uniform();
    edits.upserts.push_back(upsert);
  }
  delta.graph_views.push_back(std::move(edits));
  return delta;
}

bool WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fflush(f);
  fsync(fileno(f));
  std::fclose(f);
  if (!wrote || rename(tmp.c_str(), path.c_str()) != 0) {
    unlink(tmp.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Child mode: run (or resume) the pipeline, solve, write the fingerprint.
// ---------------------------------------------------------------------------

int RunChild(const std::string& data_dir, const std::string& fingerprint_path,
             int64_t deltas, int shards) {
  serve::GraphRegistry registry;
  serve::EngineOptions engine_options;
  engine_options.data_dir = data_dir;
  // Small interval so trials cross checkpoint + WAL-rotation boundaries, not
  // just plain appends — the compaction path must be as crash-safe as the
  // append path.
  engine_options.checkpoint_interval = 5;
  serve::Engine engine(&registry, engine_options);
  if (!engine.recovery_status().ok()) {
    std::fprintf(stderr, "child: recovery failed: %s\n",
                 engine.recovery_status().ToString().c_str());
    return 3;
  }

  int64_t epoch = 0;
  auto existing = registry.Find(kGraphId);
  if (existing != nullptr) {
    epoch = existing->epoch;
    const persist::RecoveryStats& stats = engine.recovery_stats();
    std::fprintf(stderr,
                 "child: recovered epoch=%" PRId64 " (replayed=%zu dup=%zu"
                 " truncated=%d)\n",
                 epoch, stats.deltas_replayed, stats.duplicates_skipped,
                 stats.wal_tail_truncated ? 1 : 0);
  } else {
    serve::RegisterOptions options;
    options.shards = shards;
    // Exact-tier fingerprints only: the coarse companion's post-delta repair
    // drift is legitimate (see DESIGN.md "Tiered serving"), so the bit-
    // identity contract under test is the exact path's.
    options.coarsen_ratio = 0.0;
    auto registered = engine.RegisterGraph(kGraphId, BuildFixture(), options);
    if (!registered.ok()) {
      std::fprintf(stderr, "child: register failed: %s\n",
                   registered.status().ToString().c_str());
      return 3;
    }
  }

  for (int64_t e = epoch + 1; e <= deltas; ++e) {
    auto updated = engine.UpdateGraph(kGraphId, DeltaForEpoch(e));
    if (!updated.ok()) {
      std::fprintf(stderr, "child: delta %" PRId64 " failed: %s\n", e,
                   updated.status().ToString().c_str());
      return 3;
    }
    if ((*updated)->epoch != e) {
      std::fprintf(stderr, "child: delta %" PRId64 " published epoch %" PRId64
                   "\n", e, (*updated)->epoch);
      return 3;
    }
  }

  auto entry = registry.Find(kGraphId);
  if (entry == nullptr) {
    std::fprintf(stderr, "child: graph vanished\n");
    return 3;
  }
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "epoch=%" PRId64 " signature=%016" PRIx64 " uids=%016" PRIx64
                "\n",
                entry->epoch, entry->views_signature,
                HashVector(entry->view_uids));
  out << line;
  for (size_t v = 0; v < entry->views.size(); ++v) {
    std::snprintf(line, sizeof(line), "view[%zu]=%016" PRIx64 " active=%d\n",
                  v, HashCsr(entry->views[v]), entry->active[v] ? 1 : 0);
    out << line;
  }
  for (serve::Algorithm algorithm :
       {serve::Algorithm::kSgla, serve::Algorithm::kSglaPlus}) {
    serve::SolveRequest request;
    request.graph_id = kGraphId;
    request.algorithm = algorithm;
    request.options.base.max_evaluations = 16;
    auto response = engine.Solve(request);
    if (!response.ok()) {
      std::fprintf(stderr, "child: solve failed: %s\n",
                   response.status().ToString().c_str());
      return 3;
    }
    std::snprintf(line, sizeof(line),
                  "%s weights=%016" PRIx64 " history=%016" PRIx64
                  " laplacian=%016" PRIx64 " labels=%016" PRIx64 "\n",
                  algorithm == serve::Algorithm::kSgla ? "sgla" : "sgla+",
                  HashVector(response->integration.weights),
                  HashVector(response->integration.objective_history),
                  HashCsr(response->integration.laplacian),
                  HashVector(response->labels));
    out << line;
  }
  if (!WriteFileAtomic(fingerprint_path, out.str())) {
    std::fprintf(stderr, "child: cannot write %s\n",
                 fingerprint_path.c_str());
    return 3;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Parent mode: reference run, then kill/restart trials.
// ---------------------------------------------------------------------------

int64_t NowMicros() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

pid_t Spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv("/proc/self/exe", argv.data());
    _exit(127);  // exec failed
  }
  return pid;
}

std::vector<std::string> ChildArgs(const std::string& data_dir,
                                   const std::string& fingerprint,
                                   int64_t deltas, int shards) {
  std::vector<std::string> args = {"sgla_crashgen", "--child", "--deltas",
                                   std::to_string(deltas), "--shards",
                                   std::to_string(shards), "--fingerprint",
                                   fingerprint};
  if (!data_dir.empty()) {
    args.push_back("--data-dir");
    args.push_back(data_dir);
  }
  return args;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int RunParent(const std::string& workdir, int trials, int64_t deltas,
              int shards, uint64_t seed) {
  // mkdir -p: check.sh points --dir at a nested per-matrix-cell path.
  for (size_t i = 1; i <= workdir.size(); ++i) {
    if (i != workdir.size() && workdir[i] != '/') continue;
    const std::string prefix = workdir.substr(0, i);
    if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "cannot create %s: %s\n", prefix.c_str(),
                   strerror(errno));
      return 2;
    }
  }
  std::fprintf(stderr,
               "crashgen seed=%" PRIu64 " trials=%d deltas=%" PRId64
               " shards=%d (reproduce with SGLA_CRASH_SEED=%" PRIu64 ")\n",
               seed, trials, deltas, shards, seed);

  // Reference: the same pipeline, no persistence, never killed.
  const std::string reference_path = workdir + "/reference.fp";
  const int64_t reference_start = NowMicros();
  {
    const pid_t pid =
        Spawn(ChildArgs("", reference_path, deltas, shards));
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "reference run failed (status %d)\n", status);
      return 1;
    }
  }
  const int64_t reference_us = NowMicros() - reference_start;
  std::string reference;
  if (!ReadFile(reference_path, &reference) || reference.empty()) {
    std::fprintf(stderr, "reference fingerprint missing\n");
    return 1;
  }
  std::fprintf(stderr, "reference run: %" PRId64 " ms\n",
               reference_us / 1000);

  Rng rng(seed);
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    const std::string trial_dir = workdir + "/trial" + std::to_string(t);
    const std::string fingerprint = workdir + "/trial" +
                                    std::to_string(t) + ".fp";
    const std::vector<std::string> args =
        ChildArgs(trial_dir, fingerprint, deltas, shards);
    // 1-2 kills per trial, each at a uniform instant over the reference
    // duration: early hits registration / checkpoint-0, the bulk hits WAL
    // appends and auto-checkpoints, late hits the solve (all state durable).
    const int64_t kills = 1 + rng.UniformInt(0, 1);
    for (int64_t k = 0; k < kills; ++k) {
      const int64_t delay_us = rng.UniformInt(0, reference_us);
      const pid_t pid = Spawn(args);
      usleep(static_cast<useconds_t>(delay_us));
      kill(pid, SIGKILL);
      int status = 0;
      waitpid(pid, &status, 0);
      std::fprintf(stderr, "trial %d kill %" PRId64 ": after %" PRId64
                   " us (%s)\n",
                   t, k, delay_us,
                   WIFSIGNALED(status) ? "killed" : "already done");
    }
    const pid_t pid = Spawn(args);
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "trial %d: FINAL RUN FAILED (status %d)\n", t,
                   status);
      ++failures;
      continue;
    }
    std::string recovered;
    if (!ReadFile(fingerprint, &recovered)) {
      std::fprintf(stderr, "trial %d: fingerprint missing\n", t);
      ++failures;
      continue;
    }
    if (recovered != reference) {
      std::fprintf(stderr,
                   "trial %d: FINGERPRINT MISMATCH\n--- reference\n%s"
                   "--- recovered\n%s",
                   t, reference.c_str(), recovered.c_str());
      ++failures;
      continue;
    }
    std::fprintf(stderr, "trial %d: recovered bit-identical\n", t);
  }
  if (failures > 0) {
    std::fprintf(stderr, "crashgen: %d/%d trial(s) FAILED\n", failures,
                 trials);
    return 1;
  }
  std::fprintf(stderr, "crashgen: all %d trial(s) bit-identical\n", trials);
  return 0;
}

}  // namespace
}  // namespace sgla

int main(int argc, char** argv) {
  bool child = false;
  std::string workdir;
  std::string data_dir;
  std::string fingerprint;
  int trials = 4;
  int64_t deltas = 14;
  int shards = 1;
  uint64_t seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--child") {
      child = true;
    } else if (arg == "--dir" && i + 1 < argc) {
      workdir = argv[++i];
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--fingerprint" && i + 1 < argc) {
      fingerprint = argv[++i];
    } else if (arg == "--trials" && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
    } else if (arg == "--deltas" && i + 1 < argc) {
      deltas = std::atoll(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: sgla_crashgen --dir <workdir> [--trials T] "
                   "[--deltas N] [--shards S] [--seed X]\n");
      return 2;
    }
  }
  if (child) {
    if (fingerprint.empty() || deltas < 1) {
      std::fprintf(stderr, "child needs --fingerprint and --deltas\n");
      return 2;
    }
    return sgla::RunChild(data_dir, fingerprint, deltas, shards);
  }
  if (workdir.empty() || trials < 1 || deltas < 1 || shards < 1) {
    std::fprintf(stderr,
                 "usage: sgla_crashgen --dir <workdir> [--trials T] "
                 "[--deltas N] [--shards S] [--seed X]\n");
    return 2;
  }
  if (seed == 0) {
    const char* env = std::getenv("SGLA_CRASH_SEED");
    seed = env != nullptr ? std::strtoull(env, nullptr, 10) : 20250807ull;
  }
  return sgla::RunParent(workdir, trials, deltas, shards, seed);
}
