// Fast-tier quality/speedup gate: builds an SBM fixture sized by
// SGLA_BENCH_SCALE, solves it through the engine at quality=exact and
// quality=fast, and fails unless the fast tier clears the committed bounds:
//
//   * NMI gap:  exact_nmi - fast_nmi <= --max-gap   (default 0.05)
//   * speedup:  exact_ms / fast_ms  >= --min-speedup (default 5)
//
// It also checks the refined tier's contract — a cold refined solve must
// run strictly fewer main-integration Lanczos iterations than a cold exact
// solve, and report tier_served=kRefined — so the warm-start plumbing can't
// silently regress into a no-op.
//
// CI runs this as the nmi-gap-gate step (SGLA_BENCH_SCALE=0.1); the JSON
// report is archived as an artifact.
//
// Usage: sgla_nmi_gap [--max-gap F] [--min-speedup F] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "serve/engine.h"
#include "serve/graph_registry.h"
#include "util/rng.h"

namespace sgla {
namespace {

double BenchScale() {
  const char* env = std::getenv("SGLA_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return 0.1;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 0.1;
}

struct TimedSolve {
  serve::SolveResponse response;
  double ms = 0.0;
};

/// Synchronous solve, best-of-2 wall clock (the second rep runs on a warm
/// workspace; min damps scheduler noise without a full benchmark harness).
bool TimedRun(serve::Engine* engine, const serve::SolveRequest& request,
              TimedSolve* out) {
  out->ms = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto response = engine->Solve(request);
    const auto t1 = std::chrono::steady_clock::now();
    if (!response.ok()) {
      std::fprintf(stderr, "nmi_gap: solve failed: %s\n",
                   response.status().ToString().c_str());
      return false;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < out->ms) out->ms = ms;
    out->response = std::move(*response);
  }
  return true;
}

int Main(double max_gap, double min_speedup, const std::string& out_path) {
  const double scale = BenchScale();
  const int64_t n =
      std::max<int64_t>(400, static_cast<int64_t>(20000 * scale));
  const int k = 3;

  Rng rng(4107);
  std::vector<int32_t> truth = data::BalancedLabels(n, k, &rng);
  core::MultiViewGraph mvag(n, k);
  mvag.AddGraphView(data::SbmGraph(truth, k, 0.10, 0.01, &rng));
  mvag.AddAttributeView(data::GaussianAttributes(truth, k, 8, 3.0, 0.9, &rng));

  serve::GraphRegistry registry;
  serve::EngineOptions engine_options;
  engine_options.num_sessions = 1;
  serve::Engine engine(&registry, engine_options);
  auto entry = engine.RegisterGraph("gate", mvag);
  if (!entry.ok()) {
    std::fprintf(stderr, "nmi_gap: register failed: %s\n",
                 entry.status().ToString().c_str());
    return 1;
  }
  if ((*entry)->coarse == nullptr) {
    std::fprintf(stderr, "nmi_gap: no coarse companion at n=%lld\n",
                 static_cast<long long>(n));
    return 1;
  }
  std::fprintf(stderr, "nmi_gap: n=%lld coarse_rows=%lld\n",
               static_cast<long long>(n),
               static_cast<long long>((*entry)->coarse->plan.coarse_rows));

  serve::SolveRequest request;
  request.graph_id = "gate";
  request.algorithm = serve::Algorithm::kSgla;
  request.options.base.max_evaluations = 24;

  TimedSolve exact;
  TimedSolve fast;
  request.quality = serve::Quality::kExact;
  if (!TimedRun(&engine, request, &exact)) return 1;
  request.quality = serve::Quality::kFast;
  if (!TimedRun(&engine, request, &fast)) return 1;
  if (fast.response.stats.tier_served != serve::Quality::kFast) {
    std::fprintf(stderr, "nmi_gap: fast request fell back to exact\n");
    return 1;
  }

  // Refined contract: cold refined (warm_start unset, so the cache bank is
  // not consulted) must out-iterate cold exact.
  request.quality = serve::Quality::kRefined;
  auto refined = engine.Solve(request);
  if (!refined.ok()) {
    std::fprintf(stderr, "nmi_gap: refined solve failed: %s\n",
                 refined.status().ToString().c_str());
    return 1;
  }

  const double exact_nmi =
      eval::EvaluateClustering(exact.response.labels, truth).nmi;
  const double fast_nmi =
      eval::EvaluateClustering(fast.response.labels, truth).nmi;
  const double gap = exact_nmi - fast_nmi;
  const double speedup = fast.ms > 0.0 ? exact.ms / fast.ms : 0.0;
  const bool refined_tier_ok =
      refined->stats.tier_served == serve::Quality::kRefined;
  const bool refined_iters_ok =
      refined->stats.lanczos_iterations <
      exact.response.stats.lanczos_iterations;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "nmi_gap: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"kind\": \"sgla_nmi_gap\",\n"
      << "  \"nodes\": " << n << ",\n"
      << "  \"coarse_rows\": " << (*entry)->coarse->plan.coarse_rows << ",\n"
      << "  \"exact_nmi\": " << exact_nmi << ",\n"
      << "  \"fast_nmi\": " << fast_nmi << ",\n"
      << "  \"nmi_gap\": " << gap << ",\n"
      << "  \"max_gap\": " << max_gap << ",\n"
      << "  \"exact_ms\": " << exact.ms << ",\n"
      << "  \"fast_ms\": " << fast.ms << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"min_speedup\": " << min_speedup << ",\n"
      << "  \"exact_lanczos_iterations\": "
      << exact.response.stats.lanczos_iterations << ",\n"
      << "  \"refined_lanczos_iterations\": "
      << refined->stats.lanczos_iterations << ",\n"
      << "  \"refined_tier_ok\": " << (refined_tier_ok ? "true" : "false")
      << ",\n"
      << "  \"refined_iterations_ok\": "
      << (refined_iters_ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf(
      "nmi_gap: exact nmi %.4f (%.1f ms)  fast nmi %.4f (%.1f ms)  "
      "gap %.4f  speedup %.1fx\n",
      exact_nmi, exact.ms, fast_nmi, fast.ms, gap, speedup);
  std::printf(
      "nmi_gap: lanczos exact %lld  refined %lld  (tier %s)\n",
      static_cast<long long>(exact.response.stats.lanczos_iterations),
      static_cast<long long>(refined->stats.lanczos_iterations),
      refined_tier_ok ? "refined" : "FELL BACK");

  bool ok = true;
  if (gap > max_gap) {
    std::fprintf(stderr, "nmi_gap: FAIL gap %.4f > %.4f\n", gap, max_gap);
    ok = false;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr, "nmi_gap: FAIL speedup %.2fx < %.2fx\n", speedup,
                 min_speedup);
    ok = false;
  }
  if (!refined_tier_ok) {
    std::fprintf(stderr, "nmi_gap: FAIL refined request fell back\n");
    ok = false;
  }
  if (!refined_iters_ok) {
    std::fprintf(stderr,
                 "nmi_gap: FAIL refined used %lld lanczos iterations, cold "
                 "exact used %lld\n",
                 static_cast<long long>(refined->stats.lanczos_iterations),
                 static_cast<long long>(
                     exact.response.stats.lanczos_iterations));
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sgla

int main(int argc, char** argv) {
  double max_gap = 0.05;
  double min_speedup = 5.0;
  std::string out_path = "BENCH_nmi_gap.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-gap" && i + 1 < argc) {
      max_gap = std::atof(argv[++i]);
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: sgla_nmi_gap [--max-gap F] [--min-speedup F] "
                   "[--out PATH]\n");
      return 2;
    }
  }
  return sgla::Main(max_gap, min_speedup, out_path);
}
