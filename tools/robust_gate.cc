// Robust-mode quality gate: builds a clean 2-view SBM fixture sized by
// SGLA_BENCH_SCALE, then the same fixture with a third, corrupted view
// appended (an SBM with p_in == p_out — a structure-free random graph,
// which the plain objective's connectivity term actively REWARDS, random
// graphs being expanders). Three engine solves:
//
//   * clean:       2 views, plain objective       — the reference NMI
//   * plain-3v:    3 views, plain objective       — must degrade measurably
//   * robust-3v:   3 views, robust objective      — must hold the line
//
// Gate conditions (all must hold):
//
//   * robust_nmi >= --min-ratio * clean_nmi   (default 0.85)
//   * robust_nmi >  plain_nmi                 (robust beats plain on the
//                                              corrupted fixture)
//   * plain weight on the noise view > robust weight on it (the penalty
//     actually moved mass off the corrupted view)
//
// CI runs this as the robust-gate step (SGLA_BENCH_SCALE=0.1); the JSON
// report is archived as an artifact.
//
// Usage: sgla_robust_gate [--min-ratio F] [--out PATH]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "serve/engine.h"
#include "serve/graph_registry.h"
#include "util/rng.h"

namespace sgla {
namespace {

double BenchScale() {
  const char* env = std::getenv("SGLA_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return 0.1;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 0.1;
}

bool SolveNmi(serve::Engine* engine, const std::string& graph_id, bool robust,
              const std::vector<int32_t>& truth, double* nmi,
              std::vector<double>* weights) {
  serve::SolveRequest request;
  request.graph_id = graph_id;
  request.algorithm = serve::Algorithm::kSgla;
  request.options.base.max_evaluations = 24;
  request.robust = robust;
  auto response = engine->Solve(request);
  if (!response.ok()) {
    std::fprintf(stderr, "robust_gate: solve on '%s' failed: %s\n",
                 graph_id.c_str(), response.status().ToString().c_str());
    return false;
  }
  *nmi = eval::EvaluateClustering(response->labels, truth).nmi;
  weights->assign(response->integration.weights.begin(),
                  response->integration.weights.end());
  return true;
}

int Main(double min_ratio, const std::string& out_path) {
  const double scale = BenchScale();
  const int64_t n =
      std::max<int64_t>(400, static_cast<int64_t>(20000 * scale));
  const int k = 3;

  // The clean views are deliberately WEAK (low SBM contrast, overlapping
  // attribute clusters): strong views would solve the fixture outright no
  // matter how much weight lands on the corruption, and the gate would have
  // nothing to measure.
  Rng rng(4107);
  std::vector<int32_t> truth = data::BalancedLabels(n, k, &rng);
  core::MultiViewGraph clean(n, k);
  clean.AddGraphView(data::SbmGraph(truth, k, 0.030, 0.012, &rng));
  clean.AddAttributeView(
      data::GaussianAttributes(truth, k, 6, 1.1, 1.0, &rng));

  // Corrupted fixture: the clean views plus a DENSE label-free random graph
  // (p_in == p_out kills all cluster signal). Density is the attack: a dense
  // random graph is an excellent expander, so the plain objective's
  // connectivity term actively pulls weight onto it.
  core::MultiViewGraph corrupted(n, k);
  corrupted.AddGraphView(clean.graph_views()[0]);
  corrupted.AddAttributeView(clean.attribute_views()[0]);
  const double p_noise = 0.08;
  corrupted.AddGraphView(data::SbmGraph(truth, k, p_noise, p_noise, &rng));

  serve::GraphRegistry registry;
  serve::EngineOptions engine_options;
  engine_options.num_sessions = 1;
  serve::Engine engine(&registry, engine_options);
  auto clean_entry = engine.RegisterGraph("clean", clean);
  auto corrupted_entry = engine.RegisterGraph("corrupted", corrupted);
  if (!clean_entry.ok() || !corrupted_entry.ok()) {
    std::fprintf(stderr, "robust_gate: register failed\n");
    return 1;
  }

  double clean_nmi = 0.0, plain_nmi = 0.0, robust_nmi = 0.0;
  std::vector<double> clean_w, plain_w, robust_w;
  if (!SolveNmi(&engine, "clean", false, truth, &clean_nmi, &clean_w) ||
      !SolveNmi(&engine, "corrupted", false, truth, &plain_nmi, &plain_w) ||
      !SolveNmi(&engine, "corrupted", true, truth, &robust_nmi, &robust_w)) {
    return 1;
  }
  // Global view order is graph views first: [clean graph, noise graph,
  // clean attributes] — the noise view's weight is index 1.
  const double plain_noise_w = plain_w.size() > 1 ? plain_w[1] : 0.0;
  const double robust_noise_w = robust_w.size() > 1 ? robust_w[1] : 0.0;
  const double ratio = clean_nmi > 0.0 ? robust_nmi / clean_nmi : 0.0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "robust_gate: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"kind\": \"sgla_robust_gate\",\n"
      << "  \"nodes\": " << n << ",\n"
      << "  \"clean_nmi\": " << clean_nmi << ",\n"
      << "  \"plain_corrupted_nmi\": " << plain_nmi << ",\n"
      << "  \"robust_corrupted_nmi\": " << robust_nmi << ",\n"
      << "  \"robust_over_clean\": " << ratio << ",\n"
      << "  \"min_ratio\": " << min_ratio << ",\n"
      << "  \"plain_noise_weight\": " << plain_noise_w << ",\n"
      << "  \"robust_noise_weight\": " << robust_noise_w << "\n"
      << "}\n";
  out.close();

  std::printf(
      "robust_gate: clean nmi %.4f  corrupted plain %.4f  robust %.4f  "
      "(ratio %.3f)\n",
      clean_nmi, plain_nmi, robust_nmi, ratio);
  std::printf("robust_gate: noise-view weight plain %.4f  robust %.4f\n",
              plain_noise_w, robust_noise_w);

  bool ok = true;
  if (ratio < min_ratio) {
    std::fprintf(stderr, "robust_gate: FAIL robust/clean %.3f < %.3f\n",
                 ratio, min_ratio);
    ok = false;
  }
  if (robust_nmi <= plain_nmi) {
    std::fprintf(stderr,
                 "robust_gate: FAIL robust nmi %.4f <= plain %.4f on the "
                 "corrupted fixture\n",
                 robust_nmi, plain_nmi);
    ok = false;
  }
  if (robust_noise_w >= plain_noise_w) {
    std::fprintf(stderr,
                 "robust_gate: FAIL robust kept %.4f on the noise view "
                 "(plain: %.4f)\n",
                 robust_noise_w, plain_noise_w);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sgla

int main(int argc, char** argv) {
  double min_ratio = 0.85;
  std::string out_path = "BENCH_robust_gate.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-ratio" && i + 1 < argc) {
      min_ratio = std::atof(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: sgla_robust_gate [--min-ratio F] [--out PATH]\n");
      return 2;
    }
  }
  return sgla::Main(min_ratio, out_path);
}
