// Closed-loop RPC load generator: spins up an in-process Engine + Server on
// a loopback socket, registers a synthetic fixture graph, then drives it
// with N concurrent closed-loop clients (each sends the next request the
// moment the previous reply lands — classic closed-loop load, so offered
// load adapts to service rate instead of overrunning it). Per-request
// latencies are recorded and summarized as p50/p95/p99 into a JSON report
// that scripts/perf_gate.py --latency gates in CI.
//
// Traffic mix: most requests share one coalescable key (the serving sweet
// spot this PR optimizes — identical in-flight solves collapse into one
// physical solve), a slice uses per-client distinct k to force physical
// solves, and a slice sends an invalid request to keep the typed-error path
// hot. RESOURCE_EXHAUSTED replies count as `rejected` (expected under
// saturation, gated separately from `errors`).
//
// The report carries a `sanitizer` tag; sanitizer-built numbers are 10-50x
// off and must never become a latency baseline — perf_gate.py refuses them.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "rpc/client.h"
#include "rpc/messages.h"
#include "rpc/server.h"
#include "serve/engine.h"
#include "serve/graph_registry.h"
#include "util/rng.h"

namespace {

const char* SanitizerTag() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

struct Options {
  int clients = 8;
  int requests_per_client = 40;
  int64_t graph_nodes = 400;
  int num_clusters = 3;
  int num_sessions = 2;
  int64_t engine_max_pending = 64;
  int64_t tenant_max_inflight = 0;  // off by default: gate latency, not quota
  bool coalesce = true;
  /// Fraction of solve requests sent at quality=fast (deterministic
  /// per-request assignment, not random). Fast and exact latencies are
  /// reported as separate percentile series — the cheap fast tier must
  /// never dilute the exact-tier p99 the CI gate watches.
  double fast_fraction = 0.0;
  std::string out = "BENCH_rpc.json";
};

bool ParseInt(const char* value, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value, &end, 10);
  return end != value && *end == '\0';
}

void Usage() {
  std::fprintf(
      stderr,
      "Usage: sgla_loadgen [--clients N] [--requests N] [--nodes N]\n"
      "                    [--sessions N] [--max-pending N] [--no-coalesce]\n"
      "                    [--fast-fraction F] [--out PATH]\n");
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

}  // namespace

int main(int argc, char** argv) {
  using sgla::rpc::Client;
  using sgla::rpc::SolveWireRequest;

  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t value = 0;
    auto next_int = [&](int64_t* out) {
      return i + 1 < argc && ParseInt(argv[++i], out);
    };
    if (arg == "--clients" && next_int(&value)) {
      options.clients = static_cast<int>(value);
    } else if (arg == "--requests" && next_int(&value)) {
      options.requests_per_client = static_cast<int>(value);
    } else if (arg == "--nodes" && next_int(&value)) {
      options.graph_nodes = value;
    } else if (arg == "--sessions" && next_int(&value)) {
      options.num_sessions = static_cast<int>(value);
    } else if (arg == "--max-pending" && next_int(&value)) {
      options.engine_max_pending = value;
    } else if (arg == "--no-coalesce") {
      options.coalesce = false;
    } else if (arg == "--fast-fraction" && i + 1 < argc) {
      char* end = nullptr;
      options.fast_fraction = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || options.fast_fraction < 0.0 ||
          options.fast_fraction > 1.0) {
        Usage();
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else {
      Usage();
      return 2;
    }
  }

  // In-process serving stack on an ephemeral loopback port.
  sgla::serve::GraphRegistry registry;
  sgla::serve::EngineOptions engine_options;
  engine_options.num_sessions = options.num_sessions;
  engine_options.max_pending = options.engine_max_pending;
  sgla::serve::Engine engine(&registry, engine_options);
  sgla::rpc::ServerOptions server_options;
  server_options.tenant_max_inflight = options.tenant_max_inflight;
  sgla::rpc::Server server(&engine, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "loadgen: server failed to start\n");
    return 1;
  }

  {
    sgla::Rng rng(17);
    std::vector<int32_t> labels = sgla::data::BalancedLabels(
        options.graph_nodes, options.num_clusters, &rng);
    sgla::core::MultiViewGraph mvag(options.graph_nodes,
                                    options.num_clusters);
    mvag.AddGraphView(
        sgla::data::SbmGraph(labels, options.num_clusters, 0.10, 0.01, &rng));
    mvag.AddAttributeView(sgla::data::GaussianAttributes(
        labels, options.num_clusters, 8, 3.0, 0.9, &rng));
    Client client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      std::fprintf(stderr, "loadgen: register connect failed\n");
      return 1;
    }
    sgla::rpc::RegisterRequest request;
    request.id = "load";
    request.mvag = mvag;
    auto reply = client.Register(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "loadgen: register failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    // One warm-up solve so client latencies measure steady-state serving,
    // not first-touch workspace construction.
    SolveWireRequest warmup;
    warmup.graph_id = "load";
    if (!client.Solve(warmup).ok()) {
      std::fprintf(stderr, "loadgen: warm-up solve failed\n");
      return 1;
    }
  }

  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(options.clients));
  std::vector<std::vector<int64_t>> fast_latencies(
      static_cast<size_t>(options.clients));
  std::atomic<int64_t> ok_count{0};
  std::atomic<int64_t> rejected_count{0};
  std::atomic<int64_t> error_count{0};
  std::atomic<int64_t> fast_served_count{0};
  // Deterministic per-(client, sequence) tier assignment at the requested
  // rate — reproducible runs, no RNG contention across client threads.
  const int fast_percent =
      static_cast<int>(options.fast_fraction * 100.0 + 0.5);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client
               .Connect("127.0.0.1", server.port(),
                        "tenant-" + std::to_string(c % 4))
               .ok()) {
        error_count += options.requests_per_client;
        return;
      }
      auto& local = latencies[static_cast<size_t>(c)];
      auto& fast_local = fast_latencies[static_cast<size_t>(c)];
      local.reserve(static_cast<size_t>(options.requests_per_client));
      for (int s = 0; s < options.requests_per_client; ++s) {
        SolveWireRequest request;
        request.graph_id = "load";
        request.coalesce = options.coalesce;
        const bool fast = (c * 131 + s) % 100 < fast_percent;
        if (fast) request.quality = sgla::serve::Quality::kFast;
        if (s % 8 == 6) {
          // Distinct per-client key: a guaranteed-physical solve.
          request.k = 2 + (c % 2);
        } else if (s % 8 == 7) {
          request.k = 1;  // invalid: keeps the typed-error path hot
        }
        const auto t0 = std::chrono::steady_clock::now();
        auto reply = client.Solve(request);
        const auto t1 = std::chrono::steady_clock::now();
        (fast ? fast_local : local)
            .push_back(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count());
        if (reply.ok()) {
          ++ok_count;
          if (reply->tier_served ==
              static_cast<uint8_t>(sgla::serve::Quality::kFast)) {
            ++fast_served_count;
          }
        } else if (reply.status().code() ==
                   sgla::StatusCode::kResourceExhausted) {
          ++rejected_count;
        } else if (s % 8 == 7 &&
                   reply.status().code() ==
                       sgla::StatusCode::kInvalidArgument) {
          ++ok_count;  // the injected invalid request got its typed reply
        } else {
          ++error_count;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();

  std::vector<int64_t> all;
  for (const auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<int64_t> fast_all;
  for (const auto& local : fast_latencies) {
    fast_all.insert(fast_all.end(), local.begin(), local.end());
  }
  std::sort(fast_all.begin(), fast_all.end());
  const int64_t total =
      static_cast<int64_t>(all.size() + fast_all.size());
  const double rps =
      elapsed_ms > 0 ? static_cast<double>(total) * 1000.0 / elapsed_ms : 0;

  std::ofstream out(options.out);
  if (!out) {
    std::fprintf(stderr, "loadgen: cannot write %s\n", options.out.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"kind\": \"sgla_rpc_loadgen\",\n"
      << "  \"sanitizer\": \"" << SanitizerTag() << "\",\n"
      << "  \"clients\": " << options.clients << ",\n"
      << "  \"requests_per_client\": " << options.requests_per_client
      << ",\n"
      << "  \"coalesce\": " << (options.coalesce ? "true" : "false") << ",\n"
      << "  \"requests\": " << total << ",\n"
      << "  \"ok\": " << ok_count.load() << ",\n"
      << "  \"rejected\": " << rejected_count.load() << ",\n"
      << "  \"errors\": " << error_count.load() << ",\n"
      << "  \"elapsed_ms\": " << elapsed_ms << ",\n"
      << "  \"rps\": " << rps << ",\n"
      << "  \"solves_completed\": " << engine.completed() << ",\n"
      << "  \"solves_coalesced\": " << engine.coalesced() << ",\n"
      << "  \"exact_requests\": " << all.size() << ",\n"
      << "  \"fast_requests\": " << fast_all.size() << ",\n"
      << "  \"fast_served\": " << fast_served_count.load() << ",\n"
      // Top-level latency_ns stays exact-tier only so the perf gate's
      // --latency thresholds keep their historical meaning.
      << "  \"latency_ns\": {\n"
      << "    \"p50\": " << Percentile(all, 0.50) << ",\n"
      << "    \"p95\": " << Percentile(all, 0.95) << ",\n"
      << "    \"p99\": " << Percentile(all, 0.99) << "\n"
      << "  },\n"
      << "  \"fast_latency_ns\": {\n"
      << "    \"p50\": " << Percentile(fast_all, 0.50) << ",\n"
      << "    \"p95\": " << Percentile(fast_all, 0.95) << ",\n"
      << "    \"p99\": " << Percentile(fast_all, 0.99) << "\n"
      << "  }\n"
      << "}\n";
  out.close();

  std::printf(
      "loadgen: %lld requests (%lld ok, %lld rejected, %lld errors) in "
      "%.1f ms (%.0f rps)\n",
      static_cast<long long>(total),
      static_cast<long long>(ok_count.load()),
      static_cast<long long>(rejected_count.load()),
      static_cast<long long>(error_count.load()), elapsed_ms, rps);
  std::printf(
      "loadgen: exact p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
      "(physical solves %lld, coalesced %lld)\n",
      Percentile(all, 0.50) / 1e6, Percentile(all, 0.95) / 1e6,
      Percentile(all, 0.99) / 1e6,
      static_cast<long long>(engine.completed()),
      static_cast<long long>(engine.coalesced()));
  if (!fast_all.empty()) {
    std::printf(
        "loadgen: fast  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
        "(%lld requests, %lld served fast)\n",
        Percentile(fast_all, 0.50) / 1e6, Percentile(fast_all, 0.95) / 1e6,
        Percentile(fast_all, 0.99) / 1e6,
        static_cast<long long>(fast_all.size()),
        static_cast<long long>(fast_served_count.load()));
  }
  std::printf("loadgen: wrote %s\n", options.out.c_str());
  return error_count.load() == 0 ? 0 : 1;
}
