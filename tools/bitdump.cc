// Determinism bit-dump: runs the objective / Sgla / SglaPlus / clustering
// pipeline on a fixed synthetic MVAG and prints an FNV-1a hash (plus a few
// raw hex-encoded doubles) of every result array. The CI determinism job
// runs this binary at SGLA_THREADS={1,4} x shards={1,4} per compiler and
// fails on ANY output difference — threads and shards must never change
// bits. Cross-compiler dumps are archived as artifacts for inspection
// (different FP codegen may legitimately differ across compilers).
//
// Hashes are compared only within one ISA path: reduction kernels associate
// differently per ISA, so the job pins SGLA_ISA (or passes --isa) and diffs
// dumps that share it. `--print-best-isa` lets the script discover the best
// ISA the host can actually run.
//
// Usage: sgla_bitdump [--isa <name>] [--quality exact|fast]
//                     [--print-best-isa] [shards]
//        (thread count comes from SGLA_THREADS)
//
// --quality fast covers the coarse serving tier: the dump adds the coarse
// plan fingerprint (matching + contracted views) and the engine solves run
// at Quality::kFast, so the determinism matrix also proves coarsening and
// the coarse-solve path are bit-stable across threads/shards/ISAs.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/spectral_clustering.h"
#include "core/integration.h"
#include "core/objective.h"
#include "core/view_laplacian.h"
#include "data/generator.h"
#include "la/simd.h"
#include "serve/engine.h"
#include "serve/graph_registry.h"
#include "util/rng.h"

namespace sgla {
namespace {

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t hash = 1469598103934665603ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
uint64_t HashVector(const std::vector<T>& v) {
  return Fnv1a(v.data(), v.size() * sizeof(T));
}

uint64_t HashCsr(const la::CsrMatrix& m) {
  uint64_t hash = Fnv1a(m.row_ptr.data(), m.row_ptr.size() * sizeof(int64_t));
  hash = Fnv1a(m.col_idx.data(), m.col_idx.size() * sizeof(int64_t), hash);
  return Fnv1a(m.values.data(), m.values.size() * sizeof(double), hash);
}

uint64_t DoubleBits(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

int Run(int shards, serve::Quality quality) {
  // Fixed fixture: big enough that a 4-shard plan is real (>= 4 fixed
  // 512-row chunks) and ragged (n % 512 != 0) so boundary arithmetic is
  // exercised, small enough to finish in CI seconds.
  const int64_t n = 2570;
  const int k = 3;
  Rng rng(20250715);
  std::vector<int32_t> labels = data::BalancedLabels(n, k, &rng);
  core::MultiViewGraph mvag(n, k);
  mvag.AddGraphView(data::SbmGraph(labels, k, 0.03, 0.003, &rng));
  mvag.AddGraphView(data::SbmGraph(labels, k, 0.015, 0.006, &rng));
  mvag.set_labels(std::move(labels));

  serve::GraphRegistry registry;
  serve::RegisterOptions options;
  options.shards = shards;
  auto entry = registry.Register("bitdump", mvag, options);
  if (!entry.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 entry.status().ToString().c_str());
    return 1;
  }
  // Config goes to stderr: stdout must be byte-identical across every
  // (SGLA_THREADS, shards) combination within one ISA, so the CI job can
  // plain `diff` it.
  std::fprintf(stderr, "fixture n=%" PRId64 " k=%d views=%zu shards=%d isa=%s\n",
               n, k, (*entry)->views.size(), shards,
               la::simd::ActiveIsaName());
  for (size_t v = 0; v < (*entry)->views.size(); ++v) {
    std::printf("view[%zu] hash=%016" PRIx64 "\n", v,
                HashCsr((*entry)->views[v]));
  }

  // In fast mode the coarse companion is part of the contract: its matching
  // and every contracted view must be bit-identical across the matrix too.
  if (quality != serve::Quality::kExact) {
    const serve::CoarseGraphEntry* coarse = (*entry)->coarse.get();
    if (coarse == nullptr) {
      std::fprintf(stderr, "fast dump requested but no coarse companion\n");
      return 1;
    }
    std::printf("coarse rows=%" PRId64 " map=%016" PRIx64 "\n",
                coarse->plan.coarse_rows,
                HashVector(coarse->plan.fine_to_coarse));
    for (size_t v = 0; v < coarse->views.size(); ++v) {
      std::printf("coarse view[%zu] hash=%016" PRIx64 "\n", v,
                  HashCsr(coarse->views[v]));
    }
  }

  // Objective evaluations at fixed weights, through the registered entry's
  // (possibly sharded) serving path.
  {
    core::EvalWorkspace eval_ws;
    core::ShardedEvalWorkspace sharded_ws;
    const bool sharded = (*entry)->sharded != nullptr;
    core::SpectralObjective objective =
        sharded ? core::SpectralObjective(&(*entry)->sharded->aggregator, k,
                                          core::ObjectiveOptions(),
                                          &sharded_ws)
                : core::SpectralObjective((*entry)->aggregator.get(), k,
                                          core::ObjectiveOptions(), &eval_ws);
    const std::vector<std::vector<double>> probes = {
        {0.5, 0.5}, {0.8, 0.2}, {0.35, 0.65}};
    for (const std::vector<double>& w : probes) {
      auto value = objective.Evaluate(w);
      if (!value.ok()) {
        std::fprintf(stderr, "objective failed\n");
        return 1;
      }
      std::printf("objective w0=%.2f h=%016" PRIx64 " gap=%016" PRIx64
                  " l2=%016" PRIx64 "\n",
                  w[0], DoubleBits(value->h), DoubleBits(value->eigengap),
                  DoubleBits(value->lambda2));
    }
  }

  // Full Sgla / SglaPlus cluster solves through the engine.
  serve::Engine engine(&registry);
  for (serve::Algorithm algorithm :
       {serve::Algorithm::kSgla, serve::Algorithm::kSglaPlus}) {
    serve::SolveRequest request;
    request.graph_id = "bitdump";
    request.algorithm = algorithm;
    request.quality = quality;
    request.options.base.max_evaluations = 24;
    auto response = engine.Solve(request);
    if (!response.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (response->stats.tier_served != quality) {
      std::fprintf(stderr, "tier fell back to exact\n");
      return 1;
    }
    const char* name =
        algorithm == serve::Algorithm::kSgla ? "sgla" : "sgla+";
    std::printf("%s weights=%016" PRIx64 " history=%016" PRIx64
                " laplacian=%016" PRIx64 " labels=%016" PRIx64 "\n",
                name, HashVector(response->integration.weights),
                HashVector(response->integration.objective_history),
                HashCsr(response->integration.laplacian),
                HashVector(response->labels));
    for (size_t i = 0; i < response->integration.weights.size(); ++i) {
      std::printf("%s w[%zu]=%016" PRIx64 "\n", name, i,
                  DoubleBits(response->integration.weights[i]));
    }
  }

  // View-lifecycle fingerprints: the active-set signature of the full entry,
  // then a MaskView epoch and a solve on the compacted serving subset. The
  // lifecycle rebuild path must be exactly as bit-stable across the
  // threads/shards matrix as registration is — the signature lines also pin
  // the FNV-1a uid fold itself.
  {
    std::printf("signature full=%016" PRIx64 " uids=%016" PRIx64 "\n",
                (*entry)->views_signature, HashVector((*entry)->view_uids));
    serve::GraphDelta mask;
    mask.mask_views = {1};
    auto masked = registry.UpdateGraph("bitdump", mask);
    if (!masked.ok()) {
      std::fprintf(stderr, "mask delta failed: %s\n",
                   masked.status().ToString().c_str());
      return 1;
    }
    std::printf("signature masked=%016" PRIx64 " active=%d/%zu\n",
                (*masked)->views_signature, (*masked)->num_active_views(),
                (*masked)->views.size());
    serve::SolveRequest request;
    request.graph_id = "bitdump";
    request.quality = quality;
    request.options.base.max_evaluations = 24;
    auto response = engine.Solve(request);
    if (!response.ok()) {
      std::fprintf(stderr, "masked solve failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("masked weights=%016" PRIx64 " history=%016" PRIx64
                " laplacian=%016" PRIx64 " labels=%016" PRIx64 "\n",
                HashVector(response->integration.weights),
                HashVector(response->integration.objective_history),
                HashCsr(response->integration.laplacian),
                HashVector(response->labels));
  }
  return 0;
}

}  // namespace
}  // namespace sgla

int main(int argc, char** argv) {
  int shards = 1;
  sgla::serve::Quality quality = sgla::serve::Quality::kExact;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-best-isa") == 0) {
      std::printf("%s\n",
                  sgla::la::simd::IsaName(
                      sgla::la::simd::AvailableIsas().back()));
      return 0;
    }
    if (std::strcmp(argv[i], "--isa") == 0 && i + 1 < argc) {
      // Equivalent to exporting SGLA_ISA before launch: the dispatcher reads
      // the variable lazily on the first kernel call, which is after this.
      setenv("SGLA_ISA", argv[++i], /*overwrite=*/1);
      continue;
    }
    if (std::strcmp(argv[i], "--quality") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "exact") {
        quality = sgla::serve::Quality::kExact;
      } else if (name == "fast") {
        quality = sgla::serve::Quality::kFast;
      } else {
        std::fprintf(stderr, "unknown --quality %s\n", name.c_str());
        return 2;
      }
      continue;
    }
    shards = std::atoi(argv[i]);
  }
  if (shards < 1) {
    std::fprintf(stderr,
                 "usage: sgla_bitdump [--isa <name>] [--quality exact|fast] "
                 "[--print-best-isa] [shards>=1]\n");
    return 2;
  }
  return sgla::Run(shards, quality);
}
