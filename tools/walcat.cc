// WAL / checkpoint inspector: prints every record of a delta WAL and the
// header of every checkpoint file in a persist data directory, for debugging
// crash-recovery issues from the artifacts CI uploads on a gate failure.
//
// The scan is strictly read-only — unlike persist::Wal::Open it never
// truncates a torn tail, it just reports where the valid prefix ends, so
// running it on a live or crashed directory changes nothing.
//
// Usage: sgla_walcat <data-dir | wal-file | checkpoint.sgck> ...
#include <dirent.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "persist/checkpoint.h"
#include "persist/store.h"
#include "persist/wal.h"

namespace sgla {
namespace {

// On-disk WAL framing, mirrored from src/persist/wal.cc (the writer owns the
// format; this tool only reads it).
constexpr uint64_t kWalMagic = 0x53474c4177616c31ull;  // "SGLAwal1"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 16;
constexpr size_t kWalFrameBytes = 8;  // u32 len + u32 crc
constexpr uint32_t kMaxRecordBytes = 256u << 20;

uint32_t GetU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | static_cast<uint32_t>(in[1]) << 8 |
         static_cast<uint32_t>(in[2]) << 16 |
         static_cast<uint32_t>(in[3]) << 24;
}

uint64_t GetU64(const uint8_t* in) {
  return static_cast<uint64_t>(GetU32(in)) |
         static_cast<uint64_t>(GetU32(in + 4)) << 32;
}

bool ReadWhole(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(size < 0 ? 0 : static_cast<size_t>(size));
  if (!out->empty()) {
    in.read(reinterpret_cast<char*>(out->data()),
            static_cast<std::streamsize>(out->size()));
  }
  return in.good() || in.eof();
}

void PrintDeltaSummary(const serve::GraphDelta& delta) {
  size_t upserts = 0, removals = 0;
  for (const serve::GraphViewDelta& gv : delta.graph_views) {
    upserts += gv.upserts.size();
    removals += gv.removals.size();
  }
  std::printf("edits{views=%zu upserts=%zu removals=%zu rows=%zu}",
              delta.graph_views.size(), upserts, removals,
              delta.attribute_rows.size());
  if (delta.has_lifecycle()) {
    std::printf(" lifecycle{add=%zu remove=%zu mask=%zu unmask=%zu}",
                delta.add_views.size(), delta.remove_views.size(),
                delta.mask_views.size(), delta.unmask_views.size());
  }
}

int CatWal(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadWhole(path, &bytes)) {
    std::fprintf(stderr, "%s: cannot read\n", path.c_str());
    return 1;
  }
  std::printf("== wal %s (%zu bytes)\n", path.c_str(), bytes.size());
  if (bytes.size() < kWalHeaderBytes) {
    std::printf("   empty/short file: no header\n");
    return bytes.empty() ? 0 : 1;
  }
  if (GetU64(bytes.data()) != kWalMagic) {
    std::printf("   BAD MAGIC %016" PRIx64 " (want %016" PRIx64 ")\n",
                GetU64(bytes.data()), kWalMagic);
    return 1;
  }
  if (GetU32(bytes.data() + 8) != kWalVersion) {
    std::printf("   unsupported version %u\n", GetU32(bytes.data() + 8));
    return 1;
  }

  size_t offset = kWalHeaderBytes;
  size_t index = 0;
  while (offset + kWalFrameBytes <= bytes.size()) {
    const uint32_t length = GetU32(bytes.data() + offset);
    const uint32_t crc = GetU32(bytes.data() + offset + 4);
    if (length > kMaxRecordBytes ||
        offset + kWalFrameBytes + length > bytes.size()) {
      break;  // torn tail: report below
    }
    const uint8_t* payload = bytes.data() + offset + kWalFrameBytes;
    if (persist::Crc32(payload, length) != crc) break;
    auto record = persist::DecodeWalRecord(payload, length);
    if (!record.ok()) {
      // CRC passed but the payload does not decode — a writer bug, not a
      // torn append. Keep scanning so the rest of the log is still visible.
      std::printf("[%zu] UNDECODABLE (%u bytes): %s\n", index, length,
                  record.status().ToString().c_str());
    } else if (record->kind == persist::WalRecord::Kind::kEvict) {
      std::printf("[%zu] evict  id=%s reg_uid=%" PRIu64 "\n", index,
                  record->id.c_str(), record->reg_uid);
    } else {
      std::printf("[%zu] delta  id=%s reg_uid=%" PRIu64 " epoch=%" PRId64 " ",
                  index, record->id.c_str(), record->reg_uid, record->epoch);
      PrintDeltaSummary(record->delta);
      std::printf("\n");
    }
    offset += kWalFrameBytes + length;
    ++index;
  }
  if (offset < bytes.size()) {
    std::printf("   torn tail: %zu valid record(s), %zu trailing byte(s) at "
                "offset %zu fail the frame check\n",
                index, bytes.size() - offset, offset);
  } else {
    std::printf("   %zu record(s), clean tail\n", index);
  }
  return 0;
}

int CatCheckpoint(const std::string& path) {
  auto data = persist::LoadCheckpoint(path);
  std::printf("== checkpoint %s\n", path.c_str());
  if (!data.ok()) {
    std::printf("   INVALID: %s\n", data.status().ToString().c_str());
    return 1;
  }
  size_t active = 0;
  for (const bool a : data->active) active += a ? 1 : 0;
  std::printf("   id=%s reg_uid=%" PRIu64 " epoch=%" PRId64
              " nodes=%" PRId64 " views=%zu active=%zu"
              " next_view_uid=%" PRIu64 " signature=%016" PRIx64 "\n",
              data->id.c_str(), data->reg_uid, data->epoch,
              data->mvag.num_nodes(), data->view_uids.size(), active,
              data->next_view_uid, data->views_signature);
  std::printf("   options: shards=%d coarsen_ratio=%g robust=%d knn{k=%d "
              "seed=%" PRIu64 "}\n",
              data->options.shards, data->options.coarsen_ratio,
              data->options.robust_views ? 1 : 0, data->options.knn.k,
              static_cast<uint64_t>(data->options.knn.seed));
  return 0;
}

int CatPath(const std::string& path);

int CatDir(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "%s: cannot open directory\n", dir.c_str());
    return 1;
  }
  std::vector<std::string> names;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  int status = 0;
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    const bool checkpoint =
        name.size() > 5 && name.compare(name.size() - 5, 5, ".sgck") == 0;
    if (checkpoint) {
      status |= CatCheckpoint(path);
    } else if (name == "wal.log") {
      status |= CatWal(path);
    } else {
      std::printf("== %s (skipped: not a WAL or checkpoint)\n", path.c_str());
    }
  }
  return status;
}

int CatPath(const std::string& path) {
  DIR* d = opendir(path.c_str());
  if (d != nullptr) {
    closedir(d);
    return CatDir(path);
  }
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".sgck") == 0) {
    return CatCheckpoint(path);
  }
  return CatWal(path);
}

}  // namespace
}  // namespace sgla

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: sgla_walcat <data-dir | wal-file | file.sgck> ...\n");
    return 2;
  }
  int status = 0;
  for (int i = 1; i < argc; ++i) status |= sgla::CatPath(argv[i]);
  return status;
}
