#!/usr/bin/env python3
"""Perf regression gate over google-benchmark JSON.

Usage: perf_gate.py BASELINE.json CURRENT.json

Two checks:

1. **Zero-allocation contract (hard fail).** The steady-state engine benches
   (`BM_EngineObjectiveSteadyState`, `BM_EngineAggregateSteadyState`) must
   report `allocs_per_iter == 0` in CURRENT. Full-solve and update benches
   legitimately allocate and are recorded, not gated.

2. **Timing ratio gate.** For every *compute-bound* bench present in both
   files (TIMING_GATED prefixes — the async full-solve benches report
   microsecond main-thread submit/wait cpu_time while the work runs on pool
   threads, which is pure scheduler noise; they are printed informationally,
   never gated), compute ratio = current_cpu_ns / baseline_cpu_ns, then
   divide by the **median ratio across the gated benches** — the median
   absorbs machine-speed differences between the baseline machine and the
   runner, so the gate flags benches that regressed *relative to the rest of
   the suite*, not slow hardware. Normalized ratio > FAIL_RATIO (1.5)
   fails, > WARN_RATIO (1.2) warns.

Re-baselining: run `scripts/check.sh --bench-smoke` (or download the
BENCH_engine artifact from a trusted CI run) and commit the JSON as
BENCH_baseline.json. Do this whenever benches are added/renamed or an
intentional perf trade-off moves steady-state numbers (see DESIGN.md,
"Perf regression gate").
"""

import json
import statistics
import sys

FAIL_RATIO = 1.5
WARN_RATIO = 1.2
ALLOC_GATED = ("BM_EngineObjectiveSteadyState", "BM_EngineAggregateSteadyState")
# Compute-bound benches whose cpu_time measures real work on the calling
# thread. BM_EngineSolveCluster* and BM_EngineWarmResolveAfterUpdate are
# deliberately absent: their solves run on session workers, so caller-thread
# cpu_time is submit/wait overhead (scheduler noise on shared runners).
TIMING_GATED = (
    "BM_EngineObjectiveSteadyState",
    "BM_EngineAggregateSteadyState",
    "BM_EngineUpdateGraphValueOnly",
)


def load_benches(path):
    with open(path) as f:
        report = json.load(f)
    benches = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if name:
            benches[name] = bench
    return benches


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = load_benches(sys.argv[1])
    current = load_benches(sys.argv[2])
    failures = []
    warnings = []

    # 1. Allocation contract.
    alloc_checked = 0
    for name, bench in sorted(current.items()):
        if not name.startswith(ALLOC_GATED):
            continue
        alloc_checked += 1
        allocs = bench.get("allocs_per_iter")
        if allocs is None or allocs > 0:
            failures.append(f"{name}: allocs_per_iter={allocs} (contract: 0)")
    if alloc_checked == 0:
        failures.append("no steady-state engine benches found in current run")

    # 2. Machine-normalized timing ratios over the compute-bound benches.
    ratios = {}
    informational = {}
    for name, bench in current.items():
        base = baseline.get(name)
        if base is None:
            continue
        base_ns = base.get("cpu_time")
        cur_ns = bench.get("cpu_time")
        if not base_ns or not cur_ns or base_ns <= 0:
            continue
        if name.startswith(TIMING_GATED):
            ratios[name] = cur_ns / base_ns
        else:
            informational[name] = cur_ns / base_ns
    if ratios:
        median = statistics.median(ratios.values())
        print(f"median raw ratio (machine-speed factor): {median:.3f}")
        for name, ratio in sorted(ratios.items()):
            normalized = ratio / median
            marker = " "
            if normalized > FAIL_RATIO:
                failures.append(
                    f"{name}: normalized ratio {normalized:.2f} > {FAIL_RATIO}")
                marker = "F"
            elif normalized > WARN_RATIO:
                warnings.append(
                    f"{name}: normalized ratio {normalized:.2f} > {WARN_RATIO}")
                marker = "W"
            print(f"  [{marker}] {name}: raw {ratio:.2f} "
                  f"normalized {normalized:.2f}")
        for name, ratio in sorted(informational.items()):
            print(f"  [i] {name}: raw {ratio:.2f} (not gated: async/submit "
                  f"overhead timing)")
    else:
        warnings.append("no gated benches shared between baseline and current")

    for warning in warnings:
        print(f"WARNING: {warning}")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if failures:
        sys.exit(1)
    print(f"OK: {alloc_checked} alloc-gated benches clean, "
          f"{len(ratios)} timing ratios within {FAIL_RATIO}x of baseline")


if __name__ == "__main__":
    main()
