#!/usr/bin/env python3
"""Perf regression gate over google-benchmark JSON and loadgen latency JSON.

Usage:
  perf_gate.py BASELINE.json CURRENT.json             # microbench mode
  perf_gate.py --latency BASELINE.json CURRENT.json   # RPC tail-latency mode

Microbench mode — three checks:

1. **Zero-allocation contract (hard fail).** The steady-state engine benches
   (`BM_EngineObjectiveSteadyState`, `BM_EngineAggregateSteadyState`) must
   report `allocs_per_iter == 0` in CURRENT. Full-solve and update benches
   legitimately allocate and are recorded, not gated.

2. **Normalized timing ratio gate.** For every *compute-bound* bench present
   in both files (TIMING_GATED prefixes — the async full-solve benches report
   microsecond main-thread submit/wait cpu_time while the work runs on pool
   threads, which is pure scheduler noise; they are printed informationally,
   never gated), compute ratio = current_cpu_ns / baseline_cpu_ns, then
   divide by the **median ratio across the gated benches** — the median
   absorbs machine-speed differences between the baseline machine and the
   runner, so the gate flags benches that regressed *relative to the rest of
   the suite*, not slow hardware. Normalized ratio > FAIL_RATIO (1.5)
   fails, > WARN_RATIO (1.2) warns.

3. **Absolute raw-ratio ceiling.** Median normalization is blind to a
   *uniform* regression: if every gated bench slows down 10x together, every
   normalized ratio is still 1.0. Any gated bench with a raw ratio above
   RAW_FAIL_RATIO (3.0) therefore fails outright. The ceiling is deliberately
   loose — CI runners legitimately differ from the baseline machine by
   2x-ish — so it only trips on regressions far past machine variance; the
   normalized gate remains the sensitive check. Benches reporting
   cpu_time == 0 (timer granularity underflow at tiny budgets) are skipped
   with a warning instead of silently dropped.

Latency mode (--latency) — gates tools/loadgen.cc reports:

- `errors` must be 0 (typed RESOURCE_EXHAUSTED rejections are *not* errors).
- p99 ratio current/baseline > P99_FAIL_RATIO (4.0) fails, > P99_WARN_RATIO
  (2.0) warns. Tail latency on shared runners is far noisier than cpu_time,
  hence the wide thresholds; the gate exists to catch serving-path
  regressions measured in multiples, not percents.
- Reports whose `sanitizer` tag is not "none" are rejected on either side:
  sanitizer builds are 10-50x slower and a sanitizer-tagged baseline would
  mask any real regression (the same reason check.sh refuses
  `--asan --bench-smoke`).

Re-baselining: run `scripts/check.sh --bench-smoke` (microbench) or
`scripts/check.sh --rpc-load` (latency) — both refuse sanitizer builds —
or download the BENCH artifact from a trusted CI run, and commit the JSON
as BENCH_baseline.json / BENCH_rpc_baseline.json. Do this whenever benches
are added/renamed or an intentional perf trade-off moves the numbers (see
DESIGN.md, "Perf regression gate").
"""

import json
import statistics
import sys

FAIL_RATIO = 1.5
WARN_RATIO = 1.2
# Absolute ceiling on raw (un-normalized) ratios: catches uniform
# regressions the median normalization cancels out. Loose on purpose —
# baseline-vs-runner machine variance alone is routinely ~2x.
RAW_FAIL_RATIO = 3.0
P99_FAIL_RATIO = 4.0
P99_WARN_RATIO = 2.0
ALLOC_GATED = ("BM_EngineObjectiveSteadyState", "BM_EngineAggregateSteadyState")
# Compute-bound benches whose cpu_time measures real work on the calling
# thread. BM_EngineSolveCluster*, BM_EngineSolveFastTier and
# BM_EngineWarmResolveAfterUpdate are deliberately absent: their solves run
# on session workers, so caller-thread cpu_time is submit/wait overhead
# (scheduler noise on shared runners).
TIMING_GATED = (
    "BM_EngineObjectiveSteadyState",
    "BM_EngineAggregateSteadyState",
    "BM_EngineUpdateGraphValueOnly",
    "BM_CoarsenGraph",
)


def load_benches(path):
    with open(path) as f:
        report = json.load(f)
    benches = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if name:
            benches[name] = bench
    return benches


def microbench_gate(baseline_path, current_path):
    baseline = load_benches(baseline_path)
    current = load_benches(current_path)
    failures = []
    warnings = []

    # 1. Allocation contract.
    alloc_checked = 0
    for name, bench in sorted(current.items()):
        if not name.startswith(ALLOC_GATED):
            continue
        alloc_checked += 1
        allocs = bench.get("allocs_per_iter")
        if allocs is None or allocs > 0:
            failures.append(f"{name}: allocs_per_iter={allocs} (contract: 0)")
    if alloc_checked == 0:
        failures.append("no steady-state engine benches found in current run")

    # 2 + 3. Machine-normalized ratios plus the absolute raw ceiling.
    ratios = {}
    informational = {}
    for name, bench in current.items():
        base = baseline.get(name)
        if base is None:
            continue
        base_ns = base.get("cpu_time")
        cur_ns = bench.get("cpu_time")
        if base_ns is None or cur_ns is None:
            continue
        if base_ns <= 0 or cur_ns <= 0:
            # Timer granularity underflow at tiny --benchmark_min_time
            # budgets: a 0 here is a measurement artifact, but silently
            # dropping the bench would shrink the gate without a trace.
            warnings.append(
                f"{name}: cpu_time is 0 in "
                f"{'baseline' if base_ns <= 0 else 'current'}; skipped")
            continue
        if name.startswith(TIMING_GATED):
            ratios[name] = cur_ns / base_ns
        else:
            informational[name] = cur_ns / base_ns
    if ratios:
        median = statistics.median(ratios.values())
        print(f"median raw ratio (machine-speed factor): {median:.3f}")
        for name, ratio in sorted(ratios.items()):
            normalized = ratio / median
            marker = " "
            if normalized > FAIL_RATIO:
                failures.append(
                    f"{name}: normalized ratio {normalized:.2f} > {FAIL_RATIO}")
                marker = "F"
            elif ratio > RAW_FAIL_RATIO:
                # The uniform-regression backstop: normalization can hide a
                # fleet-wide slowdown, the raw ceiling cannot.
                failures.append(
                    f"{name}: raw ratio {ratio:.2f} > {RAW_FAIL_RATIO} "
                    f"(absolute ceiling; uniform regressions are invisible "
                    f"to the normalized gate)")
                marker = "F"
            elif normalized > WARN_RATIO:
                warnings.append(
                    f"{name}: normalized ratio {normalized:.2f} > {WARN_RATIO}")
                marker = "W"
            print(f"  [{marker}] {name}: raw {ratio:.2f} "
                  f"normalized {normalized:.2f}")
        for name, ratio in sorted(informational.items()):
            print(f"  [i] {name}: raw {ratio:.2f} (not gated: async/submit "
                  f"overhead timing)")
    else:
        warnings.append("no gated benches shared between baseline and current")

    for warning in warnings:
        print(f"WARNING: {warning}")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if failures:
        sys.exit(1)
    print(f"OK: {alloc_checked} alloc-gated benches clean, "
          f"{len(ratios)} timing ratios within {FAIL_RATIO}x of baseline")


def load_latency(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("kind") != "sgla_rpc_loadgen":
        sys.exit(f"ERROR: {path} is not a loadgen report "
                 f"(kind={report.get('kind')!r})")
    return report


def latency_gate(baseline_path, current_path):
    baseline = load_latency(baseline_path)
    current = load_latency(current_path)
    failures = []
    warnings = []

    for label, report, path in (("baseline", baseline, baseline_path),
                                ("current", current, current_path)):
        tag = report.get("sanitizer", "unknown")
        if tag != "none":
            sys.exit(f"ERROR: {label} report {path} was produced by a "
                     f"'{tag}'-sanitized build; sanitizer timings are not "
                     f"comparable. Re-run without sanitizers.")

    errors = current.get("errors", -1)
    if errors != 0:
        failures.append(f"loadgen reported {errors} request errors "
                        f"(rejections are counted separately and are fine)")
    if current.get("requests", 0) <= 0:
        failures.append("loadgen report contains no requests")

    base_p99 = baseline.get("latency_ns", {}).get("p99", 0)
    cur_p99 = current.get("latency_ns", {}).get("p99", 0)
    if base_p99 > 0 and cur_p99 > 0:
        ratio = cur_p99 / base_p99
        print(f"p99 latency: baseline {base_p99 / 1e6:.3f} ms, "
              f"current {cur_p99 / 1e6:.3f} ms, ratio {ratio:.2f}")
        if ratio > P99_FAIL_RATIO:
            failures.append(
                f"p99 ratio {ratio:.2f} > {P99_FAIL_RATIO} (tail-latency "
                f"regression)")
        elif ratio > P99_WARN_RATIO:
            warnings.append(f"p99 ratio {ratio:.2f} > {P99_WARN_RATIO}")
    else:
        warnings.append("p99 missing from baseline or current; not gated")
    for p in ("p50", "p95"):
        base_v = baseline.get("latency_ns", {}).get(p, 0)
        cur_v = current.get("latency_ns", {}).get(p, 0)
        if base_v > 0 and cur_v > 0:
            print(f"  [i] {p}: baseline {base_v / 1e6:.3f} ms, "
                  f"current {cur_v / 1e6:.3f} ms, ratio "
                  f"{cur_v / base_v:.2f} (informational)")
    # Fast-tier latencies ride along informationally: the nmi-gap gate owns
    # the fast tier's speedup contract, this gate owns only the exact tail.
    for p in ("p50", "p99"):
        cur_v = current.get("fast_latency_ns", {}).get(p, 0)
        if cur_v > 0:
            print(f"  [i] fast {p}: current {cur_v / 1e6:.3f} ms "
                  f"(informational; gated by the nmi-gap job)")

    for warning in warnings:
        print(f"WARNING: {warning}")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if failures:
        sys.exit(1)
    print(f"OK: {current.get('requests')} requests, "
          f"{current.get('ok')} ok, {current.get('rejected')} rejected, "
          f"0 errors; p99 within {P99_FAIL_RATIO}x of baseline")


def main():
    args = sys.argv[1:]
    latency = False
    if args and args[0] == "--latency":
        latency = True
        args = args[1:]
    if len(args) != 2:
        sys.exit(__doc__)
    if latency:
        latency_gate(args[0], args[1])
    else:
        microbench_gate(args[0], args[1])


if __name__ == "__main__":
    main()
