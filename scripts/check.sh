#!/usr/bin/env bash
# One-command tier-1 gate: configure, build everything (-j), run ctest.
set -euo pipefail

usage() {
  cat <<'EOF'
Usage: scripts/check.sh [flags] [ctest args...]

Flags (combinable, e.g. `--asan --bench-smoke`):
  --asan         AddressSanitizer build in build-asan/
  --tsan         ThreadSanitizer build in build-tsan/ (pool forced to
                 SGLA_THREADS=4 so kernels actually run threaded)
  --ubsan        UndefinedBehaviorSanitizer build in build-ubsan/
                 (findings abort: -fno-sanitize-recover=undefined)
  --bench-smoke  skip ctest; run the Engine microbenches at a tiny time
                 budget and write BENCH_engine.json (per-kernel ns +
                 allocs_per_iter; the steady-state benches must report 0)
  --rpc-load     skip ctest; run the closed-loop RPC load generator at a
                 small fixed budget and write BENCH_rpc.json (p50/p95/p99
                 latency; gated by scripts/perf_gate.py --latency)
  --recovery     skip ctest; run the crash-recovery harness (sgla_crashgen):
                 SIGKILL a persistent engine at seeded-random points and
                 fail unless recovered solves are bit-identical to an
                 uninterrupted run (combinable with --asan)
  --isa NAME     pin the SIMD dispatch path for everything this invocation
                 runs (exports SGLA_ISA=NAME; scalar|neon|avx2|avx512).
                 Unavailable or unknown names warn and fall back to
                 auto-detection, same as the env var.
  --help, -h     this message

--asan, --tsan and --ubsan are mutually exclusive. Sanitizer builds cannot
be combined with --bench-smoke or --rpc-load: sanitizer timings are 10-50x
off, and a sanitizer-built BENCH_*.json silently committed as a baseline
would mask every real regression behind an enormous headroom.

Anything else is passed through to ctest (e.g. -R sharding_test).
Environment:
  SGLA_CHECK_BUILD_DIR  override the build directory
EOF
}

cd "$(dirname "$0")/.."

sanitizer=""
bench_smoke=0
rpc_load=0
recovery=0
ctest_args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --asan|--tsan|--ubsan)
      flag_sanitizer=address
      [[ "$1" == "--tsan" ]] && flag_sanitizer=thread
      [[ "$1" == "--ubsan" ]] && flag_sanitizer=undefined
      if [[ -n "${sanitizer}" && "${sanitizer}" != "${flag_sanitizer}" ]]; then
        echo "check.sh: --asan, --tsan and --ubsan are mutually exclusive" >&2
        exit 2
      fi
      sanitizer="${flag_sanitizer}"
      ;;
    --bench-smoke) bench_smoke=1 ;;
    --rpc-load) rpc_load=1 ;;
    --recovery) recovery=1 ;;
    --isa)
      if [[ $# -lt 2 ]]; then
        echo "check.sh: --isa needs a name (scalar|neon|avx2|avx512)" >&2
        exit 2
      fi
      shift
      export SGLA_ISA="$1"
      ;;
    --help|-h) usage; exit 0 ;;
    *) ctest_args+=("$1") ;;
  esac
  shift
done

if [[ -n "${sanitizer}" && ( "${bench_smoke}" == "1" || "${rpc_load}" == "1" ) ]]; then
  # Refuse instead of warn: a sanitizer-built BENCH_*.json committed as a
  # baseline poisons the perf gate (sanitizer timings are 10-50x off).
  echo "check.sh: --bench-smoke/--rpc-load cannot run in a sanitizer build;" \
       "benchmark and latency baselines must come from plain builds" >&2
  exit 2
fi

if [[ "${recovery}" == "1" && ( "${bench_smoke}" == "1" || "${rpc_load}" == "1" ) ]]; then
  # One skip-ctest mode per invocation: the recovery harness kills and
  # restarts child processes, which would corrupt a concurrent benchmark's
  # timings anyway.
  echo "check.sh: --recovery cannot be combined with --bench-smoke/--rpc-load" >&2
  exit 2
fi

build_dir="${SGLA_CHECK_BUILD_DIR:-build}"
cmake_args=()
if [[ "${sanitizer}" == "address" ]]; then
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-asan}"
  cmake_args+=(-DSGLA_SANITIZE=address)
elif [[ "${sanitizer}" == "thread" ]]; then
  # ThreadSanitizer gate for the deterministic execution layer: force the
  # pool wide even on small CI machines so kernels actually run threaded.
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-tsan}"
  cmake_args+=(-DSGLA_SANITIZE=thread)
  export SGLA_THREADS="${SGLA_THREADS:-4}"
elif [[ "${sanitizer}" == "undefined" ]]; then
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-ubsan}"
  cmake_args+=(-DSGLA_SANITIZE=undefined)
fi

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S . "${cmake_args[@]}"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${bench_smoke}" == "1" ]]; then
  # Perf-trajectory smoke: run the engine-layer microbenches at a tiny time
  # budget and archive per-kernel ns + allocation counts (the steady-state
  # objective benches must report allocs_per_iter == 0). The JSON is
  # machine-readable google-benchmark output; future PRs diff it.
  if [[ -x "${build_dir}/bench_micro_substrates" ]]; then
    "${build_dir}/bench_micro_substrates" \
      --benchmark_filter='Engine|Isa|Coarsen' \
      --benchmark_min_time=0.05 \
      --benchmark_out=BENCH_engine.json \
      --benchmark_out_format=json
    echo "check.sh: wrote BENCH_engine.json"
  else
    echo "check.sh: bench_micro_substrates not built (google-benchmark" \
         "missing); skipping bench smoke"
  fi
  exit 0
fi

if [[ "${rpc_load}" == "1" ]]; then
  # Tail-latency smoke: drive the RPC server closed-loop at a small fixed
  # budget and archive the p50/p95/p99 report. The budget is deliberately
  # tiny — the gate (perf_gate.py --latency) watches for multiples, not
  # percents, so a short run is enough signal.
  "${build_dir}/sgla_loadgen" --clients 6 --requests 25 --nodes 400 \
    --fast-fraction 0.5 --out BENCH_rpc.json
  echo "check.sh: wrote BENCH_rpc.json"
  exit 0
fi

if [[ "${recovery}" == "1" ]]; then
  # Crash-recovery gate: kill -9 a persistent engine at seeded-random points
  # (the seed is logged; SGLA_CRASH_SEED reproduces a red run) and require
  # the recovered solves to be bit-identical to an uninterrupted run, across
  # the same threads x shards matrix the determinism gate uses. The workdir
  # is left behind on failure so CI can upload the WAL + checkpoints.
  workdir="${build_dir}/crashgen"
  rm -rf "${workdir}"
  status=0
  for threads in 1 4; do
    for shards in 1 4; do
      echo "check.sh: crashgen SGLA_THREADS=${threads} shards=${shards}"
      if ! SGLA_THREADS="${threads}" "${build_dir}/sgla_crashgen" \
          --dir "${workdir}/t${threads}s${shards}" --shards "${shards}"; then
        status=1
      fi
    done
  done
  if [[ "${status}" != "0" ]]; then
    echo "check.sh: crash-recovery gate FAILED (state in ${workdir})" >&2
    exit 1
  fi
  rm -rf "${workdir}"
  echo "check.sh: crash-recovery gate green (${build_dir})"
  exit 0
fi

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
  ${ctest_args+"${ctest_args[@]}"}

echo "check.sh: all green (${build_dir})"
