#!/usr/bin/env bash
# One-command tier-1 gate: configure, build everything (-j), run ctest.
#
# Usage:
#   scripts/check.sh                 # release build + tests in build/
#   scripts/check.sh --asan          # same, instrumented, in build-asan/
#   scripts/check.sh --tsan          # ThreadSanitizer build, in build-tsan/
#   scripts/check.sh --bench-smoke   # tiny engine-bench run -> BENCH_engine.json
#   SGLA_CHECK_BUILD_DIR=out scripts/check.sh   # custom build dir
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${SGLA_CHECK_BUILD_DIR:-build}"
cmake_args=()
bench_smoke=0
if [[ "${1:-}" == "--asan" ]]; then
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-asan}"
  cmake_args+=(-DSGLA_SANITIZE=address)
  shift
elif [[ "${1:-}" == "--tsan" ]]; then
  # ThreadSanitizer gate for the deterministic execution layer: force the
  # pool wide even on small CI machines so kernels actually run threaded.
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-tsan}"
  cmake_args+=(-DSGLA_SANITIZE=thread)
  export SGLA_THREADS="${SGLA_THREADS:-4}"
  shift
elif [[ "${1:-}" == "--bench-smoke" ]]; then
  bench_smoke=1
  shift
fi

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S . "${cmake_args[@]}"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${bench_smoke}" == "1" ]]; then
  # Perf-trajectory smoke: run the engine-layer microbenches at a tiny time
  # budget and archive per-kernel ns + allocation counts (the steady-state
  # objective benches must report allocs_per_iter == 0). The JSON is
  # machine-readable google-benchmark output; future PRs diff it.
  if [[ -x "${build_dir}/bench_micro_substrates" ]]; then
    "${build_dir}/bench_micro_substrates" \
      --benchmark_filter='Engine' \
      --benchmark_min_time=0.05 \
      --benchmark_out=BENCH_engine.json \
      --benchmark_out_format=json
    echo "check.sh: wrote BENCH_engine.json"
  else
    echo "check.sh: bench_micro_substrates not built (google-benchmark" \
         "missing); skipping bench smoke"
  fi
  exit 0
fi

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" "$@"

echo "check.sh: all green (${build_dir})"
