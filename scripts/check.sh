#!/usr/bin/env bash
# One-command tier-1 gate: configure, build everything (-j), run ctest.
#
# Usage:
#   scripts/check.sh                 # release build + tests in build/
#   scripts/check.sh --asan          # same, instrumented, in build-asan/
#   SGLA_CHECK_BUILD_DIR=out scripts/check.sh   # custom build dir
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${SGLA_CHECK_BUILD_DIR:-build}"
cmake_args=()
if [[ "${1:-}" == "--asan" ]]; then
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-asan}"
  cmake_args+=(-DSGLA_SANITIZE=address)
  shift
fi

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S . "${cmake_args[@]}"
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" "$@"

echo "check.sh: all green (${build_dir})"
