#!/usr/bin/env bash
# One-command tier-1 gate: configure, build everything (-j), run ctest.
#
# Usage:
#   scripts/check.sh                 # release build + tests in build/
#   scripts/check.sh --asan          # same, instrumented, in build-asan/
#   scripts/check.sh --tsan          # ThreadSanitizer build, in build-tsan/
#   SGLA_CHECK_BUILD_DIR=out scripts/check.sh   # custom build dir
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${SGLA_CHECK_BUILD_DIR:-build}"
cmake_args=()
if [[ "${1:-}" == "--asan" ]]; then
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-asan}"
  cmake_args+=(-DSGLA_SANITIZE=address)
  shift
elif [[ "${1:-}" == "--tsan" ]]; then
  # ThreadSanitizer gate for the deterministic execution layer: force the
  # pool wide even on small CI machines so kernels actually run threaded.
  build_dir="${SGLA_CHECK_BUILD_DIR:-build-tsan}"
  cmake_args+=(-DSGLA_SANITIZE=thread)
  export SGLA_THREADS="${SGLA_THREADS:-4}"
  shift
fi

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S . "${cmake_args[@]}"
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" "$@"

echo "check.sh: all green (${build_dir})"
