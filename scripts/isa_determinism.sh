#!/usr/bin/env bash
# Cross-ISA determinism gate, registered as the `isa_determinism` ctest (and
# run standalone by the CI determinism job). For each ISA under test —
# scalar always, plus the best ISA the host supports when that differs —
# sgla_bitdump runs at SGLA_THREADS={1,4} x shards={1,4} and every dump must
# be byte-identical WITHIN that ISA. Dumps are never compared across ISAs:
# reduction kernels associate differently per path (see src/la/simd_table.h).
#
# Usage: isa_determinism.sh <path-to-sgla_bitdump>
set -euo pipefail

bitdump="${1:?usage: isa_determinism.sh <path-to-sgla_bitdump>}"

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

isas=(scalar)
best="$("${bitdump}" --print-best-isa)"
if [[ "${best}" != "scalar" ]]; then
  isas+=("${best}")
fi

status=0
for isa in "${isas[@]}"; do
  # The fast tier must be exactly as reproducible as exact: the coarsening
  # plan runs in plain TUs, so its dump (plan hash + coarse view hashes +
  # coarse solve) is covered by the same within-ISA byte-identity contract.
  for quality in exact fast; do
    reference=""
    for threads in 1 4; do
      for shards in 1 4; do
        dump="${workdir}/${isa}-${quality}-t${threads}-s${shards}.txt"
        SGLA_ISA="${isa}" SGLA_THREADS="${threads}" \
          "${bitdump}" --quality "${quality}" "${shards}" \
          > "${dump}" 2> "${dump}.err"
        if [[ -z "${reference}" ]]; then
          reference="${dump}"
          continue
        fi
        if ! diff -q "${reference}" "${dump}" > /dev/null; then
          echo "FAIL: ${isa}/${quality} dump differs at" \
               "SGLA_THREADS=${threads} shards=${shards} (vs t=1 s=1)" >&2
          diff "${reference}" "${dump}" | head -20 >&2 || true
          status=1
        fi
      done
    done
    if [[ "${status}" == "0" ]]; then
      echo "OK: ${isa}/${quality} bit-stable across" \
           "SGLA_THREADS={1,4} x shards={1,4}"
    fi
  done
done

exit "${status}"
