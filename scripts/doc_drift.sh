#!/usr/bin/env bash
# Doc-drift gate (registered as the `doc_drift` ctest): every SGLA_* env var
# the tree actually reads, and every scripts/check.sh flag, must be mentioned
# in README.md. Pure grep — a knob that lands without its line of docs fails
# the suite immediately, instead of rotting until someone notices.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ ! -f README.md ]]; then
  echo "doc_drift: README.md does not exist" >&2
  exit 1
fi

missing=()

# Env vars: every getenv("SGLA_*") in C++ sources, plus the shell-only knobs
# scripts read via ${SGLA_*}.
env_vars="$(
  {
    grep -rhoE 'getenv\("SGLA_[A-Z_]+"\)' src tools bench tests 2>/dev/null |
      grep -oE 'SGLA_[A-Z_]+'
    grep -rhoE '\$\{SGLA_[A-Z_]+' scripts/*.sh 2>/dev/null |
      grep -oE 'SGLA_[A-Z_]+'
  } | sort -u
)"
for var in ${env_vars}; do
  grep -q "${var}" README.md || missing+=("env var ${var}")
done

# check.sh flags: everything its argv loop matches.
flags="$(sed -n '/^while \[\[ \$# -gt 0 \]\]/,/^done/p' scripts/check.sh |
  grep -oE -- '--[a-z-]+' | sort -u)"
for flag in ${flags}; do
  grep -qe "${flag}" README.md || missing+=("check.sh flag ${flag}")
done

if [[ ${#missing[@]} -gt 0 ]]; then
  echo "doc_drift: README.md is missing documentation for:" >&2
  printf '  %s\n' "${missing[@]}" >&2
  exit 1
fi

echo "doc_drift: README.md covers every SGLA_* env var and check.sh flag"
